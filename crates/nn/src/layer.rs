//! The [`Layer`] trait and parameter/cost accounting types.

use crate::workspace::{ActBuf, Workspace};
use pgmr_tensor::checksum::{ChecksumFault, GemmChecksums};
use pgmr_tensor::{ArenaView, Shape, Tensor};

/// A parameter value: either an owned [`Tensor`] (the training and parity
/// oracle representation) or a borrowed read-only view into a shared
/// weight arena (the multi-tenant inference representation).
///
/// Reads are uniform across both variants. The first mutable access to a
/// `Shared` value detaches it copy-on-write into an `Owned` tensor, so
/// per-tenant mutation (fault injection, precision quantization,
/// optimizer steps) never writes through to co-tenants.
#[derive(Debug, Clone)]
pub enum ParamValue {
    /// Heap-owned weights, private to this layer instance.
    Owned(Tensor),
    /// Read-only weights borrowed from a shared [`ArenaView`].
    Shared(ArenaView),
}

impl ParamValue {
    /// The parameter's shape.
    pub fn shape(&self) -> &Shape {
        match self {
            ParamValue::Owned(t) => t.shape(),
            ParamValue::Shared(v) => v.shape(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape().len()
    }

    /// True when the value holds no elements (never constructible: shapes
    /// reject zero dims).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only access to the row-major data.
    pub fn data(&self) -> &[f32] {
        match self {
            ParamValue::Owned(t) => t.data(),
            ParamValue::Shared(v) => v.data(),
        }
    }

    /// Mutable access; a `Shared` value detaches copy-on-write into an
    /// owned tensor first, so mutation is always tenant-private.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.detach();
        match self {
            ParamValue::Owned(t) => t.data_mut(),
            ParamValue::Shared(_) => unreachable!("detach produced an owned value"),
        }
    }

    /// Applies `f` to every element in place (detaching a shared value).
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// An owned copy of the value.
    pub fn snapshot(&self) -> Tensor {
        match self {
            ParamValue::Owned(t) => t.clone(),
            ParamValue::Shared(v) => v.snapshot(),
        }
    }

    /// True while the value still borrows from a shared arena.
    pub fn is_shared(&self) -> bool {
        matches!(self, ParamValue::Shared(_))
    }

    /// Converts a shared value into a private owned copy (no-op when
    /// already owned).
    // pgmr-lint: boundary(hot-path-alloc): copy-on-write detach fires on the first *mutation* of an arena-shared slot (training, fault/precision injection) — the shared-weight inference forward only reads and never enters it
    fn detach(&mut self) {
        if let ParamValue::Shared(v) = self {
            *self = ParamValue::Owned(v.snapshot());
        }
    }
}

impl From<Tensor> for ParamValue {
    fn from(t: Tensor) -> Self {
        ParamValue::Owned(t)
    }
}

impl From<ArenaView> for ParamValue {
    fn from(v: ArenaView) -> Self {
        ParamValue::Shared(v)
    }
}

/// A gradient accumulator that materializes lazily for arena-backed
/// inference members: slots created by [`ParamSlot::new`] carry an eagerly
/// zeroed tensor (optimizers rely on reading zeros before any backward
/// pass — e.g. weight decay with untouched gradients), while slots created
/// by [`ParamSlot::share`] defer the allocation until a backward pass
/// actually writes, so N inference tenants never pay for gradients.
#[derive(Debug, Clone)]
pub struct GradSlot {
    dims: Vec<usize>,
    tensor: Option<Tensor>,
}

impl GradSlot {
    /// An eagerly zeroed gradient of the given shape.
    pub fn zeros(dims: Vec<usize>) -> Self {
        GradSlot { tensor: Some(Tensor::zeros(dims.clone())), dims }
    }

    /// An unmaterialized gradient: reads see an empty slice until the
    /// first mutable access allocates zeros of the recorded shape.
    pub fn lazy(dims: Vec<usize>) -> Self {
        GradSlot { dims, tensor: None }
    }

    /// Read-only access: the accumulated gradient data, or an empty slice
    /// while unmaterialized (semantically all-zeros).
    pub fn data(&self) -> &[f32] {
        self.tensor.as_ref().map(Tensor::data).unwrap_or(&[])
    }

    /// Mutable access, materializing zeros on first touch.
    // pgmr-lint: boundary(hot-path-alloc): lazy gradient materialization is a backward-pass event, once per tenant — inference reads the empty unmaterialized slice and never allocates here
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.tensor.get_or_insert_with(|| Tensor::zeros(self.dims.clone())).data_mut()
    }

    /// Applies `f` to every materialized element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        if let Some(t) = &mut self.tensor {
            t.map_in_place(f);
        }
    }

    /// Sum of all elements (0 while unmaterialized).
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Squared L2 norm (0 while unmaterialized).
    pub fn norm_sq(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum()
    }

    /// An owned tensor copy of the gradient (zeros while unmaterialized).
    pub fn snapshot(&self) -> Tensor {
        match &self.tensor {
            Some(t) => t.clone(),
            None => Tensor::zeros(self.dims.clone()),
        }
    }
}

impl From<Tensor> for GradSlot {
    fn from(t: Tensor) -> Self {
        GradSlot { dims: t.shape().dims().to_vec(), tensor: Some(t) }
    }
}

/// A trainable parameter together with its accumulated gradient.
///
/// Layers own their `ParamSlot`s; optimizers visit them through
/// [`Layer::visit_slots`] and update `value` from `grad`. The value is
/// either tenant-owned or borrowed from a shared weight arena (see
/// [`ParamValue`]); the two representations are pinned bit-identical on
/// every forward path.
#[derive(Debug, Clone)]
pub struct ParamSlot {
    /// Current parameter value.
    pub value: ParamValue,
    /// Gradient accumulated by the latest backward pass.
    pub grad: GradSlot,
}

impl ParamSlot {
    /// Creates an owned slot with a zeroed gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = GradSlot::zeros(value.shape().dims().to_vec());
        ParamSlot { value: ParamValue::Owned(value), grad }
    }

    /// Creates a slot borrowing its weights from a shared arena view. The
    /// gradient stays unmaterialized until a backward pass writes it —
    /// inference tenants never allocate gradient storage.
    pub fn share(view: ArenaView) -> Self {
        let grad = GradSlot::lazy(view.shape().dims().to_vec());
        ParamSlot { value: ParamValue::Shared(view), grad }
    }

    /// Zeroes the gradient in place (a no-op while unmaterialized, which
    /// already reads as zeros).
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }
}

/// Static cost profile of one layer for a single input image, consumed by
/// the `pgmr-perf` analytical GPU model.
///
/// `macs` counts multiply-accumulate operations; `param_elems` counts weight
/// elements that must be streamed from memory; `output_elems` counts
/// activation elements written back (and re-read by the next layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCost {
    /// Human-readable layer kind, e.g. `"conv2d"`.
    pub kind: &'static str,
    /// Multiply-accumulates per image.
    pub macs: u64,
    /// Parameter elements (weights + biases).
    pub param_elems: u64,
    /// Activation elements produced per image.
    pub output_elems: u64,
}

/// ABFT expectations over one layer's output tensor: a list of GEMM-result
/// checksum blocks, each anchored at a flat offset into the output data.
///
/// Dense layers produce a single block covering the whole `[n, out]`
/// output; convolutions produce one `[out_c, oh·ow]` block per image.
#[derive(Debug, Clone)]
pub struct OutputChecksum {
    segments: Vec<(usize, GemmChecksums)>,
}

impl OutputChecksum {
    /// Builds an expectation from `(flat_offset, checksums)` blocks.
    pub fn new(segments: Vec<(usize, GemmChecksums)>) -> Self {
        OutputChecksum { segments }
    }

    /// Verifies a (possibly corrupted) output against every block. Takes
    /// the raw row-major data so both the allocating (`Tensor`) and the
    /// workspace (`ActBuf`) forward paths verify without a copy.
    ///
    /// # Panics
    ///
    /// Panics if a block extends past the data.
    pub fn verify(&self, data: &[f32], tolerance: f32) -> Result<(), ChecksumFault> {
        for (offset, sums) in &self.segments {
            let len = sums.rows() * sums.cols();
            sums.verify(&data[*offset..*offset + len], tolerance)?;
        }
        Ok(())
    }
}

/// A differentiable network layer.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. `forward` consumes a batch and caches whatever the backward pass
///    needs. `train` distinguishes training-time behavior (e.g. batch-norm
///    batch statistics) from inference (running statistics).
/// 2. `backward` consumes the gradient w.r.t. the layer's output, updates
///    the internal parameter gradients, and returns the gradient w.r.t. the
///    layer's input. It must be called after `forward` on the same batch.
/// 3. `visit_slots` exposes parameters to the optimizer and serializer in a
///    stable order.
///
/// Layers must be `Send` so ensembles can be trained on worker threads.
pub trait Layer: Send {
    /// Runs the layer on a `[n, …]` batch, caching state for `backward`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Like [`Layer::forward`], but additionally returns ABFT checksum
    /// expectations over the output when the layer's core is a guarded
    /// GEMM (dense and convolution layers). Layers without a guarded core
    /// return `None` — their outputs are not ABFT-protected.
    fn forward_with_checksum(
        &mut self,
        input: &Tensor,
        train: bool,
    ) -> (Tensor, Option<OutputChecksum>) {
        (self.forward(input, train), None)
    }

    /// Workspace forward: runs the layer on the batch held in `input`,
    /// returning the output in a buffer from `ws` (or `input` itself for
    /// pass-through layers — the ping-pong scheme). The input buffer is
    /// consumed: implementations must release it to `ws` unless they
    /// return it. Results are bit-identical to [`Layer::forward`].
    ///
    /// The default shim routes through the allocating `forward`, keeping
    /// it the reference implementation; ported layers override this with
    /// an allocation-free body. Training callers should prefer `forward`
    /// directly — with `train == true` layers still populate their
    /// backward caches, which allocate.
    fn forward_into(&mut self, input: ActBuf, ws: &mut Workspace, train: bool) -> ActBuf {
        let x = input.to_tensor();
        ws.release(input);
        let y = self.forward(&x, train);
        ws.adopt(y)
    }

    /// [`Layer::forward_into`] plus ABFT checksum expectations, mirroring
    /// [`Layer::forward_with_checksum`]. Layers without a guarded GEMM
    /// core return `None`.
    fn forward_into_with_checksum(
        &mut self,
        input: ActBuf,
        ws: &mut Workspace,
        train: bool,
    ) -> (ActBuf, Option<OutputChecksum>) {
        (self.forward_into(input, ws, train), None)
    }

    /// Propagates gradients; returns the gradient w.r.t. the forward input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits every `(value, grad)` parameter slot in a stable order.
    fn visit_slots(&mut self, f: &mut dyn FnMut(&mut ParamSlot));

    /// Layer kind for debugging and cost reporting.
    fn name(&self) -> &'static str;

    /// Per-image cost profile for the analytical performance model.
    fn cost(&self) -> LayerCost;

    /// Clones the layer behind the trait object.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Switches Monte-Carlo dropout mode on or off. A no-op for layers
    /// without stochastic inference behavior; composite layers forward the
    /// call to their children.
    fn set_mc_dropout(&mut self, _on: bool) {}

    /// Visits every non-trainable state buffer in a stable order — e.g.
    /// batch-norm running means/variances. Buffers are part of a model's
    /// serialized state (they shape inference) but are never touched by
    /// optimizers. Composite layers forward the call to their children.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut Vec<f32>)) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_slot_zeroes_grad() {
        let mut slot = ParamSlot::new(Tensor::ones(vec![3]));
        slot.grad = Tensor::filled(vec![3], 2.0).into();
        slot.zero_grad();
        assert_eq!(slot.grad.sum(), 0.0);
        assert_eq!(slot.value.sum(), 3.0);
    }

    #[test]
    fn shared_slot_detaches_copy_on_write() {
        use pgmr_tensor::{ArenaView, WeightArena};
        use std::sync::Arc;
        let mut arena = WeightArena::new_zeroed(4);
        arena.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let arena = Arc::new(arena);
        let view = ArenaView::new(Arc::clone(&arena), 0, Shape::new(vec![4]));
        let mut slot = ParamSlot::share(view);
        assert!(slot.value.is_shared());
        assert_eq!(slot.value.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(slot.grad.data().is_empty(), "shared slot must not allocate a gradient");

        slot.value.data_mut()[0] = 9.0;
        assert!(!slot.value.is_shared(), "mutation must detach the tenant copy");
        assert_eq!(slot.value.data(), &[9.0, 2.0, 3.0, 4.0]);
        assert_eq!(arena.data(), &[1.0, 2.0, 3.0, 4.0], "arena stays untouched");

        slot.grad.data_mut()[1] = 5.0;
        assert_eq!(slot.grad.data(), &[0.0, 5.0, 0.0, 0.0], "lazy grad materializes zeros");
    }

    #[test]
    fn layer_cost_default_is_zeroed() {
        let c = LayerCost::default();
        assert_eq!(c.macs, 0);
        assert_eq!(c.param_elems, 0);
    }
}
