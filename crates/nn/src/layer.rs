//! The [`Layer`] trait and parameter/cost accounting types.

use crate::workspace::{ActBuf, Workspace};
use pgmr_tensor::checksum::{ChecksumFault, GemmChecksums};
use pgmr_tensor::Tensor;

/// A trainable parameter together with its accumulated gradient.
///
/// Layers own their `ParamSlot`s; optimizers visit them through
/// [`Layer::visit_slots`] and update `value` from `grad`.
#[derive(Debug, Clone)]
pub struct ParamSlot {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
}

impl ParamSlot {
    /// Creates a slot with a zeroed gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims().to_vec());
        ParamSlot { value, grad }
    }

    /// Zeroes the gradient in place.
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }
}

/// Static cost profile of one layer for a single input image, consumed by
/// the `pgmr-perf` analytical GPU model.
///
/// `macs` counts multiply-accumulate operations; `param_elems` counts weight
/// elements that must be streamed from memory; `output_elems` counts
/// activation elements written back (and re-read by the next layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCost {
    /// Human-readable layer kind, e.g. `"conv2d"`.
    pub kind: &'static str,
    /// Multiply-accumulates per image.
    pub macs: u64,
    /// Parameter elements (weights + biases).
    pub param_elems: u64,
    /// Activation elements produced per image.
    pub output_elems: u64,
}

/// ABFT expectations over one layer's output tensor: a list of GEMM-result
/// checksum blocks, each anchored at a flat offset into the output data.
///
/// Dense layers produce a single block covering the whole `[n, out]`
/// output; convolutions produce one `[out_c, oh·ow]` block per image.
#[derive(Debug, Clone)]
pub struct OutputChecksum {
    segments: Vec<(usize, GemmChecksums)>,
}

impl OutputChecksum {
    /// Builds an expectation from `(flat_offset, checksums)` blocks.
    pub fn new(segments: Vec<(usize, GemmChecksums)>) -> Self {
        OutputChecksum { segments }
    }

    /// Verifies a (possibly corrupted) output against every block. Takes
    /// the raw row-major data so both the allocating (`Tensor`) and the
    /// workspace (`ActBuf`) forward paths verify without a copy.
    ///
    /// # Panics
    ///
    /// Panics if a block extends past the data.
    pub fn verify(&self, data: &[f32], tolerance: f32) -> Result<(), ChecksumFault> {
        for (offset, sums) in &self.segments {
            let len = sums.rows() * sums.cols();
            sums.verify(&data[*offset..*offset + len], tolerance)?;
        }
        Ok(())
    }
}

/// A differentiable network layer.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. `forward` consumes a batch and caches whatever the backward pass
///    needs. `train` distinguishes training-time behavior (e.g. batch-norm
///    batch statistics) from inference (running statistics).
/// 2. `backward` consumes the gradient w.r.t. the layer's output, updates
///    the internal parameter gradients, and returns the gradient w.r.t. the
///    layer's input. It must be called after `forward` on the same batch.
/// 3. `visit_slots` exposes parameters to the optimizer and serializer in a
///    stable order.
///
/// Layers must be `Send` so ensembles can be trained on worker threads.
pub trait Layer: Send {
    /// Runs the layer on a `[n, …]` batch, caching state for `backward`.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Like [`Layer::forward`], but additionally returns ABFT checksum
    /// expectations over the output when the layer's core is a guarded
    /// GEMM (dense and convolution layers). Layers without a guarded core
    /// return `None` — their outputs are not ABFT-protected.
    fn forward_with_checksum(
        &mut self,
        input: &Tensor,
        train: bool,
    ) -> (Tensor, Option<OutputChecksum>) {
        (self.forward(input, train), None)
    }

    /// Workspace forward: runs the layer on the batch held in `input`,
    /// returning the output in a buffer from `ws` (or `input` itself for
    /// pass-through layers — the ping-pong scheme). The input buffer is
    /// consumed: implementations must release it to `ws` unless they
    /// return it. Results are bit-identical to [`Layer::forward`].
    ///
    /// The default shim routes through the allocating `forward`, keeping
    /// it the reference implementation; ported layers override this with
    /// an allocation-free body. Training callers should prefer `forward`
    /// directly — with `train == true` layers still populate their
    /// backward caches, which allocate.
    fn forward_into(&mut self, input: ActBuf, ws: &mut Workspace, train: bool) -> ActBuf {
        let x = input.to_tensor();
        ws.release(input);
        let y = self.forward(&x, train);
        ws.adopt(y)
    }

    /// [`Layer::forward_into`] plus ABFT checksum expectations, mirroring
    /// [`Layer::forward_with_checksum`]. Layers without a guarded GEMM
    /// core return `None`.
    fn forward_into_with_checksum(
        &mut self,
        input: ActBuf,
        ws: &mut Workspace,
        train: bool,
    ) -> (ActBuf, Option<OutputChecksum>) {
        (self.forward_into(input, ws, train), None)
    }

    /// Propagates gradients; returns the gradient w.r.t. the forward input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visits every `(value, grad)` parameter slot in a stable order.
    fn visit_slots(&mut self, f: &mut dyn FnMut(&mut ParamSlot));

    /// Layer kind for debugging and cost reporting.
    fn name(&self) -> &'static str;

    /// Per-image cost profile for the analytical performance model.
    fn cost(&self) -> LayerCost;

    /// Clones the layer behind the trait object.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Switches Monte-Carlo dropout mode on or off. A no-op for layers
    /// without stochastic inference behavior; composite layers forward the
    /// call to their children.
    fn set_mc_dropout(&mut self, _on: bool) {}

    /// Visits every non-trainable state buffer in a stable order — e.g.
    /// batch-norm running means/variances. Buffers are part of a model's
    /// serialized state (they shape inference) but are never touched by
    /// optimizers. Composite layers forward the call to their children.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut Vec<f32>)) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_slot_zeroes_grad() {
        let mut slot = ParamSlot::new(Tensor::ones(vec![3]));
        slot.grad = Tensor::filled(vec![3], 2.0);
        slot.zero_grad();
        assert_eq!(slot.grad.sum(), 0.0);
        assert_eq!(slot.value.sum(), 3.0);
    }

    #[test]
    fn layer_cost_default_is_zeroed() {
        let c = LayerCost::default();
        assert_eq!(c.macs, 0);
        assert_eq!(c.param_elems, 0);
    }
}
