//! The three scalar metric primitives: counters, gauges, histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count. All operations are relaxed
/// atomics — counts commute, so concurrent increments from worker threads
/// sum to exactly the sequential total.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (test isolation).
    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins `f64` cell (current loss, configured pool width, …),
/// stored as IEEE-754 bits in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge reading `0.0`.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The last stored value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.set(0.0);
    }
}

/// What a histogram's samples measure — controls how the deterministic
/// snapshot export treats it (see [`crate::Snapshot::to_deterministic_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Wall-clock nanoseconds (span timers). Bucket placement depends on
    /// host speed, so the deterministic export keeps only the count.
    Nanos,
    /// A dimensionless count or size — deterministic for a seeded
    /// workload, exported in full.
    Value,
}

impl Unit {
    /// The snapshot label (`"ns"` / `"value"`).
    pub fn label(self) -> &'static str {
        match self {
            Unit::Nanos => "ns",
            Unit::Value => "value",
        }
    }
}

/// Bucket count: one underflow bucket for zero plus one per power of two
/// up to `2^63`.
pub const BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram of `u64` samples.
///
/// Sample `v` lands in bucket `0` when `v == 0`, else in bucket
/// `floor(log2 v) + 1`, i.e. bucket `b ≥ 1` covers `[2^(b-1), 2^b)`.
/// Coarse, but cheap (a `leading_zeros` and one atomic add) and wide
/// enough for anything from activation counts to second-scale latencies.
#[derive(Debug)]
pub struct Histogram {
    unit: Unit,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A fresh empty histogram measuring `unit`.
    pub fn new(unit: Unit) -> Self {
        Histogram {
            unit,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The histogram's unit.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Runs `f`, records its wall-clock duration, and returns its output
    /// — the closure-shaped counterpart of a [`crate::Span`], for call
    /// sites that already hold the histogram handle (retry loops, hot
    /// paths timing several attempts into one metric). This is the
    /// sanctioned way to time code outside `pgmr-obs`: the workspace
    /// linter (`pgmr-lint`, rule `wall-clock`) keeps raw `Instant::now`
    /// reads confined to this crate and the benches.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The recorded count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// The bucket index for sample `v`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `i` (`0`, then `2^(i-1)`).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-1.25e-3);
        assert_eq!(g.get(), -1.25e-3);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // The satellite-mandated boundary check: 0 has its own bucket and
        // every power of two opens a new one.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of bucket {i}");
            if lo > 0 {
                assert_eq!(Histogram::bucket_index(lo - 1), i - 1, "below bucket {i}");
            }
        }
    }

    #[test]
    fn time_records_one_sample_and_returns_the_output() {
        let h = Histogram::new(Unit::Nanos);
        let out = h.time(|| 6 * 7);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
        assert!(h.sum() < 1_000_000_000, "timing a multiply claimed >1s");
    }

    #[test]
    fn histogram_tracks_count_sum_buckets() {
        let h = Histogram::new(Unit::Value);
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(11), 1);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn duration_recording_saturates() {
        let h = Histogram::new(Unit::Nanos);
        h.record_duration(Duration::from_nanos(1500));
        assert_eq!(h.sum(), 1500);
        h.record_duration(Duration::MAX);
        assert_eq!(h.count(), 2);
    }
}
