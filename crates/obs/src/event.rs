//! The bounded structured event log.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One structured event: a monotone sequence number (its logical
/// timestamp — wall clocks would break snapshot determinism), a kind tag,
/// and a free-form detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the log's lifetime emission order, starting at 0.
    pub seq: u64,
    /// Namespaced event family, e.g. `"abft.quarantine"`.
    pub kind: String,
    /// `key=value`-style payload, e.g. `"member=2 reason=solo"`.
    pub detail: String,
}

/// A bounded ring of [`Event`]s: emission is O(1), the newest `capacity`
/// events are retained, and evictions are counted rather than silently
/// forgotten.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

impl EventLog {
    /// An empty log retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog { capacity, inner: Mutex::new(Inner::default()) }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest retained one when full.
    /// Returns the event's sequence number.
    pub fn emit(&self, kind: impl Into<String>, detail: impl Into<String>) -> u64 {
        let mut inner = self.inner.lock().expect("event-log mutex poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push_back(Event { seq, kind: kind.into(), detail: detail.into() });
        if inner.events.len() > self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        seq
    }

    /// Events emitted over the log's lifetime (including evicted ones).
    pub fn emitted(&self) -> u64 {
        self.inner.lock().expect("event-log mutex poisoned").next_seq
    }

    /// Events evicted by the retention bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("event-log mutex poisoned").dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("event-log mutex poisoned").events.iter().cloned().collect()
    }

    /// Clears the log and restarts sequence numbering (test isolation).
    pub(crate) fn reset(&self) {
        *self.inner.lock().expect("event-log mutex poisoned") = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sequenced_in_order() {
        let log = EventLog::new(8);
        log.emit("a", "x=1");
        log.emit("b", "x=2");
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event { seq: 0, kind: "a".into(), detail: "x=1".into() });
        assert_eq!(events[1].seq, 1);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.emit("e", format!("i={i}"));
        }
        let events = log.events();
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.emitted(), 5);
    }

    #[test]
    fn reset_restarts_sequencing() {
        let log = EventLog::new(2);
        log.emit("e", "");
        log.reset();
        assert_eq!(log.emit("e", ""), 0);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }
}
