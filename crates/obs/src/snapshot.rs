//! Point-in-time metric snapshots and their hand-rolled JSON export
//! (the workspace has no JSON dependency).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::event::{Event, EventLog};
use crate::metric::{Counter, Gauge, Histogram, Unit, BUCKETS};

/// A frozen copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// What the samples measure.
    pub unit: Unit,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// A frozen copy of a [`crate::Registry`]: every metric sorted by name,
/// plus the retained events.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counters as `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value)`, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms as `(name, frozen contents)`, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted by the log's retention bound.
    pub events_dropped: u64,
}

impl Snapshot {
    pub(crate) fn capture(
        counters: &Mutex<BTreeMap<String, Arc<Counter>>>,
        gauges: &Mutex<BTreeMap<String, Arc<Gauge>>>,
        histograms: &Mutex<BTreeMap<String, Arc<Histogram>>>,
        events: &EventLog,
    ) -> Self {
        let counters = counters
            .lock()
            .expect("obs counter registry mutex poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = gauges
            .lock()
            .expect("obs gauge registry mutex poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = histograms
            .lock()
            .expect("obs histogram registry mutex poisoned")
            .iter()
            .map(|(name, h)| {
                let buckets = (0..BUCKETS)
                    .filter_map(|i| {
                        let n = h.bucket(i);
                        (n > 0).then(|| (Histogram::bucket_lower_bound(i), n))
                    })
                    .collect();
                (
                    name.clone(),
                    HistogramSnapshot { unit: h.unit(), count: h.count(), sum: h.sum(), buckets },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            events: events.events(),
            events_dropped: events.dropped(),
        }
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Retained events of the given kind, oldest first.
    pub fn events_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Full JSON export: sorted names, stable formatting, wall-clock
    /// values included.
    pub fn to_json(&self) -> String {
        self.render(false)
    }

    /// Reproducibility export: identical structure, but time-valued
    /// (`ns`-unit) histograms are redacted to their sample counts and
    /// scheduling-dependent metrics (names containing `.worker.`) are
    /// skipped entirely, so two runs of the same seeded workload produce
    /// byte-identical documents.
    pub fn to_deterministic_json(&self) -> String {
        self.render(true)
    }

    fn render(&self, deterministic: bool) -> String {
        let keep = |name: &str| !deterministic || !name.contains(".worker.");
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter().filter(|(n, _)| keep(n)), |out, (n, v)| {
            push_json_string(out, n);
            out.push_str(&format!(": {v}"));
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter().filter(|(n, _)| keep(n)), |out, (n, v)| {
            push_json_string(out, n);
            out.push_str(": ");
            push_json_f64(out, *v);
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, self.histograms.iter().filter(|(n, _)| keep(n)), |out, (n, h)| {
            push_json_string(out, n);
            let unit = h.unit.label();
            if deterministic && h.unit == Unit::Nanos {
                out.push_str(&format!(": {{\"unit\": \"{unit}\", \"count\": {}}}", h.count));
            } else {
                let buckets: Vec<String> =
                    h.buckets.iter().map(|&(lo, c)| format!("[{lo}, {c}]")).collect();
                out.push_str(&format!(
                    ": {{\"unit\": \"{unit}\", \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}",
                    h.count,
                    h.sum,
                    buckets.join(", ")
                ));
            }
        });
        out.push_str("},\n  \"events\": [");
        push_entries(&mut out, self.events.iter(), |out, e| {
            out.push_str(&format!("{{\"seq\": {}, \"kind\": ", e.seq));
            push_json_string(out, &e.kind);
            out.push_str(", \"detail\": ");
            push_json_string(out, &e.detail);
            out.push('}');
        });
        out.push_str(&format!("],\n  \"events_dropped\": {}\n}}\n", self.events_dropped));
        out
    }
}

/// Renders `items` as `\n    <item>,`-separated entries with a closing
/// newline-indent, or nothing when empty (keeps `{}`/`[]` compact).
fn push_entries<T>(
    out: &mut String,
    items: impl Iterator<Item = T>,
    mut render: impl FnMut(&mut String, T),
) {
    let mut first = true;
    for item in items {
        out.push_str(if first { "\n    " } else { ",\n    " });
        render(out, item);
        first = false;
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Appends `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` deterministically: shortest round-trip formatting,
/// with the non-JSON specials mapped to `null`.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.counter("a.count").inc();
        r.counter("pool.worker.0.jobs_total").add(7);
        r.gauge("loss").set(0.5);
        r.histogram("acts").record(3);
        r.histogram("acts").record(4);
        r.timer("lat_ns").record(12_345);
        r.emit("kind.a", "member=1");
        r.emit("kind\"b", "line\nbreak");
        r
    }

    #[test]
    fn export_is_sorted_and_stable() {
        let r = populated();
        let json = r.snapshot().to_json();
        let a = json.find("\"a.count\"").unwrap();
        let b = json.find("\"b.count\"").unwrap();
        assert!(a < b, "names must export in sorted order");
        assert_eq!(json, r.snapshot().to_json(), "same state, same bytes");
        assert!(json.contains("\"lat_ns\": {\"unit\": \"ns\", \"count\": 1, \"sum\": 12345"));
        assert!(json.contains("\"acts\": {\"unit\": \"value\", \"count\": 2, \"sum\": 7, \"buckets\": [[2, 1], [4, 1]]}"));
        assert!(json.contains("\"events_dropped\": 0"));
    }

    #[test]
    fn deterministic_export_redacts_time_and_scheduling() {
        let json = populated().snapshot().to_deterministic_json();
        assert!(json.contains("\"lat_ns\": {\"unit\": \"ns\", \"count\": 1}"), "{json}");
        assert!(!json.contains("12345"), "raw nanoseconds leaked: {json}");
        assert!(!json.contains("pool.worker."), "scheduling-dependent metric leaked");
        // Value histograms and counters stay fully exported.
        assert!(json.contains("\"acts\": {\"unit\": \"value\", \"count\": 2, \"sum\": 7"));
        assert!(json.contains("\"a.count\": 1"));
    }

    #[test]
    fn strings_are_escaped() {
        let json = populated().snapshot().to_json();
        assert!(json.contains("\"kind\\\"b\""));
        assert!(json.contains("\"line\\nbreak\""));
    }

    #[test]
    fn empty_registry_exports_compact_empties() {
        let json = Registry::new().snapshot().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"events\": []"));
    }

    #[test]
    fn snapshot_accessors_find_metrics() {
        let s = populated().snapshot();
        assert_eq!(s.counter("a.count"), Some(1));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.histogram("acts").unwrap().count, 2);
        assert_eq!(s.events_of_kind("kind.a").count(), 1);
    }

    #[test]
    fn non_finite_gauges_export_as_null() {
        let r = Registry::new();
        r.gauge("bad").set(f64::NAN);
        assert!(r.snapshot().to_json().contains("\"bad\": null"));
    }
}
