//! The name → metric registry, span timers, and the process-wide
//! [`global`] instance.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::EventLog;
use crate::metric::{Counter, Gauge, Histogram, Unit};
use crate::snapshot::Snapshot;

/// Default retention bound of a registry's event log.
pub(crate) const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// A set of named metrics plus one event log.
///
/// Metric handles are `Arc`s: get-or-create by name, then increment
/// lock-free. Names are dot-namespaced by convention
/// (`subsystem.metric`, e.g. `infer.forward_ns.m0`); two suffix/infix
/// conventions carry semantics — `_ns` histograms hold wall-clock
/// nanoseconds and `.worker.` metrics depend on thread scheduling, and
/// the deterministic snapshot export treats both specially.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: EventLog,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default event-log capacity.
    pub fn new() -> Self {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry retaining at most `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: EventLog::new(capacity),
        }
    }

    /// The counter named `name`, created zeroed on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name, Counter::new)
    }

    /// The gauge named `name`, created at `0.0` on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name, Gauge::new)
    }

    /// The value histogram named `name`. The unit is fixed at first
    /// creation; later calls return the existing histogram regardless of
    /// which constructor they came through.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name, || Histogram::new(Unit::Value))
    }

    /// The nanosecond histogram named `name` (span-timer target).
    pub fn timer(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name, || Histogram::new(Unit::Nanos))
    }

    /// Starts a [`Span`] recording its elapsed nanoseconds into the timer
    /// histogram `name` when dropped.
    pub fn span(&self, name: &str) -> Span {
        Span { hist: self.timer(name), start: Instant::now() }
    }

    /// Appends an event to the registry's log.
    pub fn emit(&self, kind: impl Into<String>, detail: impl Into<String>) {
        self.events.emit(kind, detail);
    }

    /// The registry's event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// A point-in-time snapshot of every metric and the retained events.
    /// Concurrent updates may land between individual metric reads —
    /// snapshots are consistent per metric, not across metrics.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(&self.counters, &self.gauges, &self.histograms, &self.events)
    }

    /// Zeroes every metric and clears the event log, keeping handles
    /// alive — outstanding `Arc`s keep recording into the same metrics.
    /// Meant for test isolation around the [`global`] registry; callers
    /// must serialize against concurrent instrumented work themselves.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("obs counter registry mutex poisoned").values() {
            c.reset();
        }
        for g in self.gauges.lock().expect("obs gauge registry mutex poisoned").values() {
            g.reset();
        }
        for h in self.histograms.lock().expect("obs histogram registry mutex poisoned").values() {
            h.reset();
        }
        self.events.reset();
    }
}

fn get_or_create<T>(
    map: &Mutex<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    let mut map = map.lock().expect("obs metric registry mutex poisoned");
    match map.get(name) {
        Some(existing) => Arc::clone(existing),
        None => {
            let fresh = Arc::new(make());
            map.insert(name.to_string(), Arc::clone(&fresh));
            fresh
        }
    }
}

/// An RAII timer: created by [`Registry::span`], records the elapsed
/// nanoseconds into its histogram when dropped. Use
/// [`Span::finish`] to end it explicitly mid-scope.
#[must_use = "a span records on drop — binding it to _ ends it immediately"]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}

    /// Nanoseconds elapsed so far, without ending the span.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// The process-wide registry every instrumented hot path reports into,
/// built on first use.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        r.counter("b").inc();
        assert_eq!(r.counter("a").get(), 3);
        assert_eq!(r.counter("b").get(), 1);
    }

    #[test]
    fn timer_and_histogram_units() {
        let r = Registry::new();
        assert_eq!(r.timer("t_ns").unit(), Unit::Nanos);
        assert_eq!(r.histogram("h").unit(), Unit::Value);
        // First creation wins; the name maps to one histogram.
        assert_eq!(r.histogram("t_ns").unit(), Unit::Nanos);
    }

    #[test]
    fn span_records_positive_nanos_on_drop() {
        let r = Registry::new();
        {
            let span = r.span("work_ns");
            std::hint::black_box(&span);
        }
        let h = r.timer("work_ns");
        assert_eq!(h.count(), 1);
        // Monotonic clocks can report 0ns for back-to-back reads on some
        // hosts, so assert only on the recorded count plus a sane sum.
        assert!(h.sum() < 1_000_000_000, "span claimed >1s for a no-op");
    }

    #[test]
    fn reset_preserves_outstanding_handles() {
        let r = Registry::new();
        let c = r.counter("kept");
        c.add(5);
        r.emit("e", "detail");
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(r.events().events().len(), 0);
        c.inc();
        assert_eq!(r.counter("kept").get(), 1, "handle still wired to the registry");
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                // pgmr-lint: allow(stray-spawn): pgmr-obs sits below pgmr-nn in the crate DAG, so this concurrency test cannot use pgmr_nn::pool without a dependency cycle; raw threads are the point here — they exercise cross-thread counter atomicity with no pool machinery in between
                std::thread::spawn(move || {
                    let c = r.counter("shared");
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 80_000);
    }
}
