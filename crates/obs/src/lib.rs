//! # pgmr-obs — the workspace's observability substrate
//!
//! The paper's whole argument rests on *measured* behavior: per-network
//! contribution frequencies drive RADE's priority order (§III-F),
//! activation counts drive the energy claims (Fig. 10), and fault
//! campaigns classify Masked/SDC/Detected outcomes. This crate is the
//! observation layer the rest of the workspace reports into — a
//! dependency-free set of primitives cheap enough for every hot path:
//!
//! * [`Counter`] — a monotonic `AtomicU64` (relaxed increments);
//! * [`Gauge`] — a last-value `f64` cell (bit-cast through `AtomicU64`);
//! * [`Histogram`] — a log₂-bucketed distribution of `u64` samples
//!   (latencies in nanoseconds, activation counts, …), lock-free;
//! * [`Span`] — an RAII timer recording its elapsed nanoseconds into a
//!   [`Histogram`] on drop;
//! * [`EventLog`] — a bounded, sequence-numbered ring of structured
//!   events (quarantines, strikes, training runs) that drops its oldest
//!   entries under pressure and counts what it dropped.
//!
//! All of them live behind a [`Registry`]: a name → metric map whose
//! [`Registry::snapshot`] produces a point-in-time [`Snapshot`] with a
//! deterministic (sorted, stably formatted) JSON export. Library code
//! reports into the process-wide [`global`] registry; tests that need
//! isolation construct their own `Registry`.
//!
//! ## Determinism contract
//!
//! [`Snapshot::to_json`] is the full export, wall-clock values included.
//! [`Snapshot::to_deterministic_json`] is the reproducibility view: it
//! redacts time-valued histograms to their sample counts and skips
//! scheduling-dependent metrics (names containing `.worker.`), so two
//! runs of the same seeded workload export byte-identical documents.
//!
//! ## Overhead budget
//!
//! A counter increment is one relaxed atomic add (~1 ns). A histogram
//! record is three. A span costs two `Instant::now` calls (~40 ns). A
//! registry lookup (`counter("name")`) takes a short mutex and a BTreeMap
//! walk (~100 ns) — fine at per-inference granularity; per-element inner
//! loops should hold the returned `Arc` handle instead. The instrumented
//! inference paths stay within 5% of their uninstrumented throughput
//! (forward passes are tens of microseconds and up).

mod event;
mod metric;
mod registry;
mod snapshot;

pub use event::{Event, EventLog};
pub use metric::{Counter, Gauge, Histogram, Unit, BUCKETS};
pub use registry::{global, Registry, Span};
pub use snapshot::{HistogramSnapshot, Snapshot};
