//! Fixture-based golden tests: each rule demonstrated firing and being
//! suppressed, with the rendered diagnostics pinned byte-for-byte in
//! `tests/fixtures/*.expected`.
//!
//! Fixtures are linted under *virtual* paths: path-scoped rules
//! (wall-clock's obs/bench exemption, unordered-iter's export markers,
//! panic-hygiene's test-file exemption) key off the workspace-relative
//! path, and the fixtures live under `tests/fixtures/` where the real
//! walker never looks (they violate the rules on purpose).
//!
//! To update after an intentional rule change:
//! `PGMR_LINT_REGEN=1 cargo test -p pgmr-lint --test golden`

use std::fs;
use std::path::{Path, PathBuf};

use pgmr_lint::{lint_source, LintReport};

/// (fixture file, virtual workspace path it is linted under).
const CASES: &[(&str, &str)] = &[
    ("float_eq.rs", "crates/virt/src/float_eq.rs"),
    ("wall_clock.rs", "crates/virt/src/wall_clock.rs"),
    ("stray_spawn.rs", "crates/virt/src/stray_spawn.rs"),
    ("panic_hygiene.rs", "crates/virt/src/panic_hygiene.rs"),
    ("unordered_iter.rs", "crates/virt/src/snapshot_export.rs"),
    ("bare_atomic.rs", "crates/virt/src/bare_atomic.rs"),
    ("suppressed.rs", "crates/virt/src/suppressed.rs"),
    ("unused_allow.rs", "crates/virt/src/unused_allow.rs"),
    ("hot_path_alloc.rs", "crates/virt/src/hot_path_alloc.rs"),
    ("nested_pool_run.rs", "crates/virt/src/nested_pool_run.rs"),
    ("lock_order.rs", "crates/obs/src/lock_order.rs"),
    ("semantic_suppressed.rs", "crates/obs/src/semantic_suppressed.rs"),
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

fn rendered(fixture: &str, virtual_path: &str) -> String {
    let src = fs::read_to_string(fixtures_dir().join(fixture)).expect("fixture readable");
    let mut report = LintReport {
        diagnostics: lint_source(virtual_path, &src),
        files_scanned: 1,
        ..Default::default()
    };
    report.sort();
    let mut out: String = report.diagnostics.iter().map(|d| d.to_string() + "\n").collect();
    if out.is_empty() {
        out.push_str("(clean)\n");
    }
    out
}

#[test]
fn golden_outputs_match() {
    let regen = std::env::var("PGMR_LINT_REGEN").is_ok();
    let mut failures = Vec::new();
    for (fixture, virtual_path) in CASES {
        let got = rendered(fixture, virtual_path);
        let expected_path = fixtures_dir().join(fixture.replace(".rs", ".expected"));
        if regen {
            fs::write(&expected_path, &got).expect("write .expected");
            continue;
        }
        let want = fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!("{} missing — run with PGMR_LINT_REGEN=1", expected_path.display())
        });
        if got != want {
            failures.push(format!(
                "=== {fixture} (as {virtual_path}) ===\n--- got ---\n{got}--- want ---\n{want}"
            ));
        }
    }
    assert!(failures.is_empty(), "golden mismatches:\n{}", failures.join("\n"));
}

#[test]
fn every_rule_both_fires_and_suppresses() {
    // The acceptance contract: each rule demonstrated firing somewhere in
    // the fixtures, and suppressed (with a reason) in suppressed.rs.
    let mut fired: Vec<&str> = Vec::new();
    for (fixture, virtual_path) in CASES {
        let src = fs::read_to_string(fixtures_dir().join(fixture)).expect("fixture readable");
        for d in lint_source(virtual_path, &src) {
            fired.push(d.rule);
        }
    }
    for rule in pgmr_lint::rules::RULE_IDS {
        assert!(fired.contains(rule), "rule {rule} never fires in the fixtures");
    }
    for meta in ["unused-allow", "invalid-allow"] {
        assert!(fired.contains(&meta), "meta rule {meta} never fires in the fixtures");
    }
    for (fixture, virtual_path) in [
        ("suppressed.rs", "crates/virt/src/suppressed.rs"),
        ("semantic_suppressed.rs", "crates/obs/src/semantic_suppressed.rs"),
    ] {
        let src = fs::read_to_string(fixtures_dir().join(fixture)).expect("fixture readable");
        assert!(
            lint_source(virtual_path, &src).is_empty(),
            "{fixture} must lint clean — every allow consumed, every reason present"
        );
    }
}

#[test]
fn path_exemptions_hold() {
    let clock = fs::read_to_string(fixtures_dir().join("wall_clock.rs")).expect("fixture");
    assert!(
        lint_source("crates/obs/src/wall_clock.rs", &clock).is_empty(),
        "wall-clock must be exempt inside crates/obs"
    );
    assert!(
        lint_source("crates/bench/benches/wall_clock.rs", &clock).is_empty(),
        "wall-clock must be exempt inside crates/bench"
    );
    let unordered = fs::read_to_string(fixtures_dir().join("unordered_iter.rs")).expect("fixture");
    assert!(
        lint_source("crates/virt/src/math.rs", &unordered).is_empty(),
        "unordered-iter must only police export surfaces"
    );
    let spawn = fs::read_to_string(fixtures_dir().join("stray_spawn.rs")).expect("fixture");
    assert!(
        lint_source("crates/nn/src/pool.rs", &spawn).is_empty(),
        "stray-spawn must be exempt inside pgmr_nn::pool"
    );
    let hygiene = fs::read_to_string(fixtures_dir().join("panic_hygiene.rs")).expect("fixture");
    assert!(
        lint_source("crates/virt/tests/panic_hygiene.rs", &hygiene).is_empty(),
        "panic-hygiene must be exempt in test files"
    );
}

#[test]
fn json_report_round_trips_fixture_diagnostics() {
    let src = fs::read_to_string(fixtures_dir().join("float_eq.rs")).expect("fixture");
    let mut report = LintReport {
        diagnostics: lint_source("crates/virt/src/float_eq.rs", &src),
        files_scanned: 1,
        ..Default::default()
    };
    report.sort();
    let json = report.to_json();
    assert!(json.starts_with("{\"version\":2,\"files_scanned\":1,"));
    assert!(json.contains("\"rule\":\"float-eq\""));
    assert!(json.contains("\"file\":\"crates/virt/src/float_eq.rs\""));
    // Every diagnostic surfaced in JSON exactly once.
    assert_eq!(json.matches("\"rule\":").count(), report.diagnostics.len());
}
