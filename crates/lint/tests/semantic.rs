//! Pins the semantic analysis against the real workspace: the
//! hot-path reachable set must be non-trivial and must cover the
//! `forward_into` implementation of every layer. A resolver or indexer
//! regression that silently empties the call graph would otherwise
//! leave `hot-path-alloc` vacuously green.

use std::path::Path;

use pgmr_lint::callgraph::{CallGraph, Reach};
use pgmr_lint::resolve::Resolver;
use pgmr_lint::rules::hot_path;
use pgmr_lint::{find_workspace_root, index_workspace};

/// Every `impl Layer for …` type in `crates/nn/src/layers/`. Grep for
/// `impl Layer for` and update this list when a layer is added.
const LAYER_IMPLS: &[&str] = &[
    "AvgPoolGlobal",
    "BatchNorm2d",
    "Conv2d",
    "Dense",
    "DenseBlock",
    "Dropout",
    "Flatten",
    "MaxPool2d",
    "Parallel",
    "Relu",
    "Residual",
];

#[test]
fn hot_path_reachable_set_covers_every_layer_forward_into() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let ix = index_workspace(&root).expect("workspace indexes");
    let resolver = Resolver::new(&ix);
    let graph = CallGraph::build(&ix, &resolver);

    let roots = hot_path::roots(&ix);
    assert!(
        roots.len() >= LAYER_IMPLS.len(),
        "expected at least one zero-alloc root per layer impl, got {}",
        roots.len()
    );
    let reach = Reach::compute(&graph, &roots, |_| false);
    let reached = (0..ix.fns.len()).filter(|&f| reach.seen[f]).count();
    assert!(reached >= 50, "suspiciously small hot-path reachable set ({reached} fns)");

    for layer in LAYER_IMPLS {
        let covered = (0..ix.fns.len()).any(|f| {
            let fun = &ix.fns[f];
            reach.seen[f] && fun.name == "forward_into" && fun.self_type.as_deref() == Some(*layer)
        });
        assert!(covered, "{layer}::forward_into is not in the hot-path reachable set");
    }
}

#[test]
fn workspace_index_is_populated() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let ix = index_workspace(&root).expect("workspace indexes");
    assert!(ix.files.len() > 100, "only {} files indexed", ix.files.len());
    assert!(ix.fns.len() > 1000, "only {} fns indexed", ix.fns.len());
    assert!(ix.total_calls() > 5000, "only {} calls indexed", ix.total_calls());
}
