//! `--fix-allows` integration: planning against a real lint report
//! removes exactly the unused directives, clean fixtures round-trip
//! byte-identically, and the fixed source re-lints clean.

use std::fs;
use std::path::{Path, PathBuf};

use pgmr_lint::fix::remove_directives;
use pgmr_lint::{fix, lint_source, lint_sources};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

#[test]
fn every_fixture_round_trips_byte_identical_when_nothing_is_removed() {
    for entry in fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("fixture readable");
        let (out, removed) = remove_directives(&src, &[]);
        assert_eq!(out, src, "{} must round-trip byte-identical", path.display());
        assert!(removed.is_empty());
    }
}

#[test]
fn unused_allows_are_removed_and_the_result_relints_clean() {
    let src = "\
pub fn f(x: f32) -> bool {
    // pgmr-lint: allow(float-eq): exact sentinel
    x == 1.0
}
// pgmr-lint: allow(wall-clock): stale — nothing below uses a clock
pub fn g() {}
pub fn h() {} // pgmr-lint: allow(hot-path-alloc): stale trailing directive
";
    let relpath = "crates/virt/src/fixme.rs";
    let diags = lint_source(relpath, src);
    let unused: Vec<usize> =
        diags.iter().filter(|d| d.rule == "unused-allow").map(|d| d.line).collect();
    assert_eq!(unused.len(), 2, "{diags:?}");

    let (fixed, removed) = remove_directives(src, &unused);
    assert_eq!(removed.len(), 2);
    assert!(fixed.contains("allow(float-eq)"), "the used allow must survive");
    assert!(!fixed.contains("allow(wall-clock)"));
    assert!(!fixed.contains("allow(hot-path-alloc)"));
    assert!(fixed.contains("pub fn h() {}\n"), "trailing directive removal keeps the code");
    assert!(
        lint_source(relpath, &fixed).is_empty(),
        "after fixing, the file must lint clean: {:?}",
        lint_source(relpath, &fixed)
    );
}

#[test]
fn plan_groups_removals_per_file_and_write_applies_them() {
    let dir = std::env::temp_dir().join(format!("pgmr-lint-fix-{}", std::process::id()));
    let file_dir = dir.join("crates/virt/src");
    fs::create_dir_all(&file_dir).expect("temp tree");
    let src = "// pgmr-lint: allow(float-eq): stale\npub fn f() {}\n";
    fs::write(file_dir.join("stale.rs"), src).expect("write fixture");

    let relpath = "crates/virt/src/stale.rs".to_string();
    let report = lint_sources(&[(relpath.clone(), src.to_string())]);
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].rule, "unused-allow");

    let fixes = fix::plan(&dir, &report).expect("plan");
    assert_eq!(fixes.len(), 1);
    assert_eq!(fixes[0].relpath, relpath);
    assert_eq!(fixes[0].removals.len(), 1);
    assert_eq!(fixes[0].new_content, "pub fn f() {}\n");

    fix::write(&dir, &fixes).expect("write");
    let rewritten = fs::read_to_string(file_dir.join("stale.rs")).expect("read back");
    assert_eq!(rewritten, "pub fn f() {}\n");
    fs::remove_dir_all(&dir).ok();
}
