//! Fixture: every semantic rule suppressed with a reasoned `allow`,
//! plus a `boundary` placing a documented allocating tier past the
//! hot-path frontier. Must lint clean — each directive consumed.

pub struct Engine;

impl Engine {
    pub fn forward_into_logits(&mut self) {
        // pgmr-lint: allow(hot-path-alloc): fixture — demonstrates a reasoned on-site suppression
        let scratch: Vec<u32> = Vec::new();
        drop(scratch);
        self.marshal();
    }

    // pgmr-lint: boundary(hot-path-alloc): fixture — a documented allocating tier past the frontier
    fn marshal(&self) {
        let out = vec![1u8];
        drop(out);
    }
}

pub fn outer(pool: &WorkerPool) {
    let jobs = sources().iter().map(|x| helper(x));
    pool.run(jobs);
}

fn helper(x: u32) {
    // pgmr-lint: allow(nested-pool-run): fixture — the origin closure is an inline iterator adapter, not a pool job
    crate::pool::global().run(jobs_for(x));
}

impl Engine {
    fn alpha_then_beta(&self) {
        let a = self.alpha.lock().expect("alpha poisoned");
        // pgmr-lint: allow(lock-order): fixture — inverted on purpose to demonstrate suppression
        let b = self.beta.lock().expect("beta poisoned");
        drop((a, b));
    }

    fn beta_then_alpha(&self) {
        let b = self.beta.lock().expect("beta poisoned");
        let a = self.alpha.lock().expect("alpha poisoned");
        drop((a, b));
    }
}
