//! Fixture: every rule silenced by a well-formed suppression — one
//! comment-above, one trailing — so the golden output is empty.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub fn suppressed_float(x: f32) -> bool {
    // pgmr-lint: allow(float-eq): sentinel value is assigned, never computed
    x == 1.0
}

pub fn suppressed_trailing(x: f64) -> bool {
    x != 0.0 // pgmr-lint: allow(float-eq): exact-zero guard before division
}

pub fn suppressed_clock() {
    // pgmr-lint: allow(wall-clock): fixture demonstrates a justified local timer
    let _ = Instant::now();
}

pub fn suppressed_spawn() {
    // pgmr-lint: allow(stray-spawn): fixture thread never joins the pool on purpose
    std::thread::spawn(|| {});
}

pub fn suppressed_unwrap(x: Option<u8>) -> u8 {
    // pgmr-lint: allow(panic-hygiene): fixture value is constructed Some two lines up
    x.unwrap()
}

pub fn suppressed_atomic(a: &AtomicU64, order: Ordering) -> u64 {
    // pgmr-lint: allow(bare-atomic): ordering is threaded through by the caller
    a.load(order)
}
