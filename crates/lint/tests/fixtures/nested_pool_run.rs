//! Fixture: a pool dispatch reachable from inside a pool job closure
//! fires `nested-pool-run` with the origin and the chain to the inner
//! dispatcher.

pub fn outer(pool: &WorkerPool) {
    let jobs = sources().iter().map(|x| helper(x));
    pool.run(jobs);
}

fn helper(x: u32) {
    nested(x);
}

fn nested(x: u32) {
    crate::pool::global().run(jobs_for(x));
}
