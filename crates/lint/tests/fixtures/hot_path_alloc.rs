//! Fixture: an allocating constructor reachable from a zero-alloc
//! root fires `hot-path-alloc` with a witness chain.

pub struct Network;

impl Network {
    pub fn forward_into_logits(&mut self) {
        helper();
    }
}

fn helper() {
    let scratch: Vec<u32> = Vec::new();
    drop(scratch);
}

fn cold() {
    // Unreachable from any root: allocating here is fine.
    let v: Vec<u32> = Vec::new();
    drop(v);
}
