//! Fixture: the `float-eq` rule fires on `==`/`!=` with float operands,
//! in library and test code alike, but not on epsilon comparisons.

pub fn literal_right(x: f32) -> bool {
    x == 0.0
}

pub fn literal_left(x: f64) -> bool {
    1.5 != x
}

pub fn associated_const(x: f32) -> bool {
    x == f32::EPSILON
}

pub fn epsilon_compare_is_fine(x: f32) -> bool {
    (x - 1.0).abs() < 1e-6
}

pub fn int_compare_is_fine(n: usize) -> bool {
    n == 0
}

pub fn string_is_fine() -> &'static str {
    "x == 1.0"
}

#[cfg(test)]
mod tests {
    #[test]
    fn also_fires_in_tests() {
        assert!(super::literal_right(0.0) == true);
        let y = 2.0_f32;
        let _ = y != 2.0;
    }
}
