//! Fixture: the `wall-clock` rule fires on raw clock reads. The golden
//! test lints this file twice — under a core path (diagnostics) and
//! under `crates/obs/` (clean), exercising the path exemption.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub fn timestamp() -> u128 {
    let start = Instant::now();
    let _ = start;
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0)
}

pub fn instant_as_type_is_fine(t: Instant) -> Instant {
    t
}
