//! Fixture: the `bare-atomic` rule fires on atomic-shaped calls whose
//! argument list never names `Ordering`, whether the ordering came from
//! a variable or a glob import.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn ordering_from_variable(a: &AtomicU64, order: Ordering) -> u64 {
    a.load(order)
}

pub fn ordering_from_glob_import(a: &AtomicU64) {
    a.store(1, Relaxed);
    a.fetch_add(2, Relaxed);
}

pub fn explicit_ordering_is_fine(a: &AtomicU64) -> u64 {
    a.fetch_add(1, Ordering::Relaxed);
    a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).unwrap_or(0);
    a.load(Ordering::SeqCst)
}
