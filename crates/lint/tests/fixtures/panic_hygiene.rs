//! Fixture: the `panic-hygiene` rule fires on `.unwrap()` and
//! `.expect("")` in library code, and stays quiet in `#[cfg(test)]`
//! modules and on `expect` calls that carry a real message.

pub fn bare_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn empty_expect(x: Option<u8>) -> u8 {
    x.expect("")
}

pub fn expect_with_message_is_fine(x: Option<u8>) -> u8 {
    x.expect("caller guarantees a value here")
}

pub fn unwrap_or_is_fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

pub fn string_is_fine() -> &'static str {
    "please do not .unwrap() this"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        assert_eq!(Some(3).unwrap(), 3);
        let _ = Some(4).expect("");
    }
}
