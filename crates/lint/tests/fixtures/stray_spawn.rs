//! Fixture: the `stray-spawn` rule fires on `thread::spawn` and on
//! `.spawn(…)` method calls, everywhere outside `pgmr_nn::pool` —
//! including test modules, since a test thread dodges the pool's panic
//! capture just the same.

pub fn raw_spawn() {
    std::thread::spawn(|| {});
}

pub fn builder_spawn() {
    let _ = std::thread::Builder::new().spawn(|| {});
}

pub fn spawn_as_plain_name_is_fine() {
    fn spawn() {}
    spawn();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_threads_count_too() {
        std::thread::spawn(|| {});
    }
}
