//! Fixture: the meta rules — an allow that suppresses nothing, an allow
//! missing its reason, an allow naming an unknown rule, and an allow
//! aimed at the wrong rule (which leaves the real finding standing).

pub fn clean_target() -> u32 {
    // pgmr-lint: allow(float-eq): stale — the comparison was removed last refactor
    41 + 1
}

pub fn missing_reason(x: f32) -> bool {
    // pgmr-lint: allow(float-eq)
    x == 1.0
}

pub fn unknown_rule() -> u32 {
    // pgmr-lint: allow(no-such-rule): confidently wrong
    7
}

pub fn wrong_rule(x: f32) -> bool {
    // pgmr-lint: allow(wall-clock): aimed at the wrong rule entirely
    x == 2.0
}
