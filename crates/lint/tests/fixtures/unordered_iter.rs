//! Fixture: the `unordered-iter` rule fires on `HashMap`/`HashSet` in
//! files on an export surface. The golden test lints this file under a
//! `…/snapshot_export.rs` virtual path (diagnostics) and under a plain
//! math-module path (clean).

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn to_json(map: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in map {
        out.push_str(&format!("{k}={v},"));
    }
    out
}

pub fn seen() -> HashSet<u64> {
    HashSet::new()
}

pub fn ordered_is_fine(map: &BTreeMap<String, u64>) -> usize {
    map.len()
}
