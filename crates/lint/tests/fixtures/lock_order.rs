//! Fixture: two functions taking the same lock pair in opposite orders
//! fire `lock-order` (linted under a `crates/obs/` virtual path — the
//! rule only polices the lock-holding subsystems).

impl Registry {
    fn alpha_then_beta(&self) {
        let a = self.alpha.lock().expect("alpha poisoned");
        let b = self.beta.lock().expect("beta poisoned");
        drop((a, b));
    }

    fn beta_then_alpha(&self) {
        let b = self.beta.lock().expect("beta poisoned");
        let a = self.alpha.lock().expect("alpha poisoned");
        drop((a, b));
    }
}
