//! The workspace gates on its own linter: zero diagnostics over the
//! whole tree. This is `cargo run -p pgmr-lint -- --workspace --deny`
//! in test form, so a plain `cargo test` catches a reintroduced float
//! `==`, stray thread, bare unwrap, or stale allow before CI does.

use pgmr_lint::{find_workspace_root, lint_workspace};
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    let listing: String = report.diagnostics.iter().map(|d| format!("  {d}\n")).collect();
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must lint clean; fix or `pgmr-lint: allow(rule): reason`-annotate:\n{listing}"
    );
}
