//! A hand-rolled Rust lexer: comment-, string-, and lifetime-aware.
//!
//! The rules in [`crate::rules`] are lexical, so the only hard
//! requirement on this lexer is that it never mistakes quoted or
//! commented text for code (a `"unwrap()"` inside a string literal must
//! not trip the panic-hygiene rule) and never mistakes a lifetime for the
//! start of a char literal (`&'a str` must not swallow the rest of the
//! file into one bogus token). It handles nested block comments, raw and
//! byte strings, raw identifiers, numeric suffixes, and float literals in
//! all their `1.`, `1.0`, `1e-3`, `2.0f32` spellings.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `f32`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinct from [`TokenKind::Char`].
    Lifetime,
    /// An integer literal, including its suffix (`42`, `0xff`, `3usize`).
    Int,
    /// A float literal, including its suffix (`1.0`, `1e-3`, `2.5f32`).
    Float,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`). The
    /// token text is the *contents*, without quotes or prefix.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation; multi-char operators arrive fused (`==`, `!=`, `::`).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind::Str`] for the string caveat).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in chars).
    pub col: usize,
}

/// One `//` line comment (block comments are skipped — suppression
/// directives are line comments by definition).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Everything after the leading `//`, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
}

/// The lexer's output: the token stream plus the line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-trivia tokens in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<Comment>,
}

/// Two-char operators the rules care about arriving fused. Everything
/// else may lex as single chars — the rules only match on these.
const FUSED_OPS: &[&str] = &["==", "!=", "::", "->", "=>", "<=", ">=", "&&", "||", ".."];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and line comments. Never fails: unrecognized
/// bytes become single-char [`TokenKind::Punct`] tokens, and an
/// unterminated literal simply ends at EOF.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { chars: src.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment { text, line });
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            '"' => {
                let text = scan_string(&mut cur);
                out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
            }
            '\'' => scan_quote(&mut cur, &mut out, line, col),
            _ if c.is_ascii_digit() => {
                let (kind, text) = scan_number(&mut cur);
                out.tokens.push(Token { kind, text, line, col });
            }
            _ if is_ident_start(c) => {
                let ident = scan_ident(&mut cur);
                if !scan_prefixed_literal(&mut cur, &mut out, &ident, line, col) {
                    out.tokens.push(Token { kind: TokenKind::Ident, text: ident, line, col });
                }
            }
            _ => {
                let mut text = String::new();
                text.push(c);
                cur.bump();
                if let Some(next) = cur.peek(0) {
                    let mut fused = text.clone();
                    fused.push(next);
                    if FUSED_OPS.contains(&fused.as_str()) {
                        cur.bump();
                        text = fused;
                    }
                }
                out.tokens.push(Token { kind: TokenKind::Punct, text, line, col });
            }
        }
    }
    out
}

fn scan_ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        s.push(c);
        cur.bump();
    }
    s
}

/// A plain `"…"` string body (opening quote still pending).
fn scan_string(cur: &mut Cursor) -> String {
    cur.bump(); // opening quote
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                s.push(c);
                if let Some(escaped) = cur.bump() {
                    s.push(escaped);
                }
            }
            _ => s.push(c),
        }
    }
    s
}

/// A `r#*"…"#*` raw-string body (prefix consumed, cursor at `#` or `"`).
fn scan_raw_string(cur: &mut Cursor) -> String {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let mut s = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            for ahead in 0..hashes {
                if cur.peek(ahead) != Some('#') {
                    s.push(c);
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        s.push(c);
    }
    s
}

/// Resolves `'…` into a lifetime or a char literal.
fn scan_quote(cur: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    cur.bump(); // the quote
    let next = cur.peek(0);
    let is_lifetime = match next {
        // `'a` / `'static`: ident chars NOT closed by a quote right after
        // a single char (`'a'` is a char literal, `'ab` can only be a
        // lifetime since `'ab'` is not legal Rust).
        Some(c) if is_ident_start(c) => cur.peek(1) != Some('\''),
        _ => false,
    };
    if is_lifetime {
        let name = scan_ident(cur);
        out.tokens.push(Token { kind: TokenKind::Lifetime, text: format!("'{name}"), line, col });
        return;
    }
    // Char literal: consume until the unescaped closing quote.
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                text.push(c);
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                }
            }
            _ => text.push(c),
        }
    }
    out.tokens.push(Token { kind: TokenKind::Char, text, line, col });
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw idents
/// (`r#match`). Returns true when `ident` was a literal prefix and the
/// literal token has been pushed.
fn scan_prefixed_literal(
    cur: &mut Cursor,
    out: &mut Lexed,
    ident: &str,
    line: usize,
    col: usize,
) -> bool {
    match (ident, cur.peek(0)) {
        ("r" | "br" | "b", Some('"')) => {
            let text = if ident == "b" { scan_string(cur) } else { scan_raw_string(cur) };
            out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
            true
        }
        ("r" | "br", Some('#')) if cur.peek(1) == Some('"') || cur.peek(1) == Some('#') => {
            let text = scan_raw_string(cur);
            out.tokens.push(Token { kind: TokenKind::Str, text, line, col });
            true
        }
        ("r", Some('#')) => {
            // Raw identifier `r#while`: emit as a plain ident.
            cur.bump();
            let name = scan_ident(cur);
            out.tokens.push(Token { kind: TokenKind::Ident, text: name, line, col });
            true
        }
        ("b", Some('\'')) => {
            scan_quote(cur, out, line, col);
            true
        }
        _ => false,
    }
}

fn scan_number(cur: &mut Cursor) -> (TokenKind, String) {
    let mut text = String::new();
    let mut float = false;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        // Radix literal: digits, underscores, hex letters, suffix.
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        return (TokenKind::Int, text);
    }
    while let Some(c) = cur.peek(0) {
        if !c.is_ascii_digit() && c != '_' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    // A fractional part — but `1..n` is a range and `1.max(2)` a method
    // call, so the dot only joins the number when what follows cannot
    // start a new token chain.
    if cur.peek(0) == Some('.') {
        let after = cur.peek(1);
        let is_fraction = match after {
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true,
        };
        if is_fraction {
            float = true;
            text.push('.');
            cur.bump();
            while let Some(c) = cur.peek(0) {
                if !c.is_ascii_digit() && c != '_' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
        }
    }
    // Exponent (`1e5`, `2.5E-3`).
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (a, b) = (cur.peek(1), cur.peek(2));
        let exp = match a {
            Some(d) if d.is_ascii_digit() => true,
            Some('+' | '-') => matches!(b, Some(d) if d.is_ascii_digit()),
            _ => false,
        };
        if exp {
            float = true;
            text.push(cur.bump().expect("peeked exponent marker"));
            while let Some(c) = cur.peek(0) {
                if !c.is_ascii_digit() && c != '+' && c != '-' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
        }
    }
    // Type suffix (`f32`, `usize`); a float suffix forces Float.
    if matches!(cur.peek(0), Some(c) if is_ident_start(c)) {
        let suffix = scan_ident(cur);
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
    }
    (if float { TokenKind::Float } else { TokenKind::Int }, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = "let s = \"x.unwrap()\"; // trailing x.unwrap()\n/* x.unwrap() */ done";
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("trailing"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t.clone()).collect();
        assert_eq!(chars, vec!["z", "\\n"]);
    }

    #[test]
    fn float_spellings() {
        for src in ["1.0", "0.5", "1e-3", "2.5E3", "2.0f32", "1f64", "1."] {
            let toks = kinds(src);
            assert_eq!(toks[0].0, TokenKind::Float, "{src} should lex as float");
        }
        for src in ["1", "0xff", "42usize", "1_000"] {
            let toks = kinds(src);
            assert_eq!(toks[0].0, TokenKind::Int, "{src} should lex as int");
        }
    }

    #[test]
    fn ranges_and_method_calls_are_not_floats() {
        let toks = kinds("0..10");
        assert_eq!(toks[0].0, TokenKind::Int);
        assert_eq!(toks[1], (TokenKind::Punct, "..".to_string()));
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "max".to_string()));
    }

    #[test]
    fn fused_operators() {
        let toks = kinds("a == b != c :: d");
        let puncts: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Punct).map(|(_, t)| t.clone()).collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"let a = r#"x == 1.0"#; let b = b"y.unwrap()";"####);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec!["x == 1.0", "y.unwrap()"]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("before /* outer /* inner */ still */ after");
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.clone()).collect();
        assert_eq!(idents, vec!["before", "after"]);
    }

    #[test]
    fn multi_hash_raw_strings_ignore_inner_terminators() {
        // A two-hash raw string may contain `"#` without terminating,
        // and its body is hidden from the rules verbatim.
        let src = r###"let a = r##"inner "# quote and x.unwrap()"##; after();"###;
        let toks = kinds(src);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec![r##"inner "# quote and x.unwrap()"##]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "after"));
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        // Byte raw strings take the same path.
        let toks = kinds(r####"let b = br##"bytes "# here"##;"####);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec![r##"bytes "# here"##]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let toks = kinds("fn r#match(r#fn: u32) { r#match(r#fn); }");
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).map(|(_, t)| t.clone()).collect();
        assert_eq!(idents, vec!["fn", "match", "fn", "u32", "match", "fn"]);
        // `r` followed by `#` then a quote is a raw string, not a raw
        // ident — the disambiguation must not eat the literal.
        let toks = kinds(r##"let s = r#"text"#;"##);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t == "text"));
    }

    #[test]
    fn deeply_nested_block_comments_track_depth_and_lines() {
        let src = "a /* 1 /* 2 /* 3 */ 2 */ 1 */ b\nc";
        let lexed = lex(src);
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        // Multi-line nested comments keep line accounting intact.
        let lexed = lex("x /* outer\n /* inner\n */ still outer\n */ y");
        let y = lexed.tokens.iter().find(|t| t.text == "y").expect("y survives");
        assert_eq!(y.line, 4);
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
