//! Cross-file name resolution: maps file paths to module paths, and
//! call sites to candidate callee functions in the workspace index.
//!
//! Resolution is *name-based over-approximation*, not type checking:
//! a `.forward(…)` method call resolves to every indexed method named
//! `forward`, and `Type::name` to every `name` owned by an impl or
//! trait block for `Type`. That errs toward extra call-graph edges —
//! the safe direction for the reachability rules, which exist to prove
//! the *absence* of bad paths. Precision comes from four filters:
//! `Self`-rewriting against the caller's impl block, module-suffix
//! matching for qualified free functions, the per-file `use` map
//! for bare imported names, and [`STD_COLLISION_METHODS`] — receiver
//! calls whose names belong to the std prelude do not fan out at all.

use std::collections::HashMap;

use crate::index::{CallSite, FnId, WorkspaceIndex};

/// Method names that collide with the std prelude's iterator/container
/// vocabulary and the `std::ops` arithmetic traits (plus the
/// workspace's ubiquitous accessor names `data` and `set`/`get`). A
/// receiver-form call like `.map(…)`, `.clone()`, or `.add(…)` is
/// overwhelmingly a std call, and fanning it out to every workspace
/// method of that name floods the graph with cross-tier false edges
/// (`members.iter().map(…)` must not become an edge to `Tensor::map`,
/// nor `Counter::inc`'s `self.add(1)` one to `Tensor::add`).
/// These names therefore resolve only in qualified form
/// (`Tensor::map(…)`); the documented cost is that receiver-form calls
/// to same-named workspace methods go unseen (DESIGN.md §4c).
const STD_COLLISION_METHODS: &[&str] = &[
    "add",
    "all",
    "any",
    "chain",
    "clear",
    "clone",
    "collect",
    "contains",
    "count",
    "data",
    "div",
    "enumerate",
    "extend",
    "fill",
    "filter",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "get",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "last",
    "len",
    "map",
    "max",
    "min",
    "mul",
    "next",
    "pop",
    "position",
    "push",
    "resize",
    "rev",
    "set",
    "skip",
    "sub",
    "sum",
    "take",
    "zip",
];

/// Derives `(crate_module_name, module_path)` from a workspace-relative
/// file path. Mirrors the workspace layout: `crates/<dir>/src/a/b.rs`
/// → (`pgmr_<dir>`, `["a", "b"]`), with `mod.rs`, `lib.rs`, `main.rs`,
/// and the `bin/`/`tests/`/`benches/` roots collapsing as cargo does.
pub fn module_path_for(relpath: &str) -> (String, Vec<String>) {
    let parts: Vec<&str> = relpath.split('/').collect();
    let (crate_name, rest): (String, &[&str]) =
        if parts.first() == Some(&"crates") && parts.len() >= 2 {
            (crate_module_name(parts[1]), &parts[2..])
        } else {
            ("pgmr".to_string(), &parts[..])
        };
    // Strip the source root (`src/`, `tests/`, `benches/`).
    let rest = match rest.first() {
        Some(&"src") => &rest[1..],
        Some(&"tests") | Some(&"benches") => &rest[1..],
        _ => rest,
    };
    let mut modules: Vec<String> = Vec::new();
    for (i, part) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if !matches!(stem, "lib" | "main" | "mod") {
                modules.push(stem.to_string());
            }
        } else if *part == "bin" {
            // `src/bin/x.rs` is its own crate root.
        } else {
            modules.push((*part).to_string());
        }
    }
    (crate_name, modules)
}

/// The module name a crate directory compiles to. The workspace names
/// crates `pgmr-<dir>` except the core crate (`polygraph-mr`) and the
/// root package (`pgmr`).
fn crate_module_name(dir: &str) -> String {
    if dir == "core" {
        "polygraph_mr".to_string()
    } else {
        format!("pgmr_{}", dir.replace('-', "_"))
    }
}

/// Name-based callee resolution over a [`WorkspaceIndex`].
pub struct Resolver {
    /// Methods (`has_self`) by bare name.
    methods: HashMap<String, Vec<FnId>>,
    /// Free functions (no `self`) by bare name.
    free: HashMap<String, Vec<FnId>>,
    /// All fns by `(owner_type, name)` — inherent, trait impl, or
    /// trait default/decl.
    typed: HashMap<(String, String), Vec<FnId>>,
}

impl Resolver {
    pub fn new(ix: &WorkspaceIndex) -> Self {
        let mut methods: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut free: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut typed: HashMap<(String, String), Vec<FnId>> = HashMap::new();
        for (id, f) in ix.fns.iter().enumerate() {
            if f.has_self {
                methods.entry(f.name.clone()).or_default().push(id);
            } else {
                free.entry(f.name.clone()).or_default().push(id);
            }
            if let Some(t) = &f.self_type {
                typed.entry((t.clone(), f.name.clone())).or_default().push(id);
            }
            if let Some(t) = &f.trait_name {
                // `impl Trait for Type` also answers `Trait::name`.
                typed.entry((t.clone(), f.name.clone())).or_default().push(id);
            }
        }
        Resolver { methods, free, typed }
    }

    /// Candidate callees for one call site in `caller`.
    pub fn resolve(&self, ix: &WorkspaceIndex, caller: FnId, call: &CallSite) -> Vec<FnId> {
        let name = call.path.last().map(String::as_str).unwrap_or_default();
        if call.method {
            // `.name(…)`: every method of that name, plus trait
            // defaults (indexed under the trait's own type) — except
            // std-prelude collisions, which only resolve qualified.
            if STD_COLLISION_METHODS.contains(&name) {
                return Vec::new();
            }
            return self.methods.get(name).cloned().unwrap_or_default();
        }
        if call.path.len() >= 2 {
            let qual = &call.path[..call.path.len() - 1];
            let owner = qual.last().map(String::as_str).unwrap_or_default();
            let owner = if owner == "Self" {
                match &ix.fns[caller].self_type {
                    Some(t) => t.as_str(),
                    None => owner,
                }
            } else {
                owner
            };
            if owner.starts_with(|c: char| c.is_ascii_uppercase()) {
                // Type- or trait-qualified: `Type::name`.
                return self
                    .typed
                    .get(&(owner.to_string(), name.to_string()))
                    .cloned()
                    .unwrap_or_default();
            }
            // Module-qualified free fn: match the qualifier as a
            // suffix of the callee's full module path.
            return self
                .free
                .get(name)
                .map(|cands| {
                    cands
                        .iter()
                        .copied()
                        .filter(|&id| self.module_suffix_matches(ix, caller, id, qual))
                        .collect()
                })
                .unwrap_or_default();
        }
        // Bare call: prefer free fns in the same file, then the `use`
        // map, then any free fn of that name workspace-wide.
        let Some(cands) = self.free.get(name) else { return Vec::new() };
        let caller_file = ix.fns[caller].file;
        let same_file: Vec<FnId> =
            cands.iter().copied().filter(|&id| ix.fns[id].file == caller_file).collect();
        if !same_file.is_empty() {
            return same_file;
        }
        if let Some(u) = ix.files[caller_file].uses.iter().find(|u| u.alias == name) {
            if u.path.len() >= 2 {
                let qual = &u.path[..u.path.len() - 1];
                let imported: Vec<FnId> = cands
                    .iter()
                    .copied()
                    .filter(|&id| self.module_suffix_matches(ix, caller, id, qual))
                    .collect();
                if !imported.is_empty() {
                    return imported;
                }
            }
        }
        cands.clone()
    }

    /// Whether `callee`'s full module path (`crate::mods…`) ends with
    /// the written qualifier, after rewriting `crate`/`self`/`super`
    /// heads against the caller's location.
    fn module_suffix_matches(
        &self,
        ix: &WorkspaceIndex,
        caller: FnId,
        callee: FnId,
        qual: &[String],
    ) -> bool {
        let cf = &ix.fns[callee];
        let file = &ix.files[cf.file];
        let mut full: Vec<&str> = vec![file.crate_name.as_str()];
        full.extend(file.module_path.iter().map(String::as_str));
        full.extend(cf.modules.iter().map(String::as_str));
        // Rewrite relative heads; keep only plain segments for the
        // suffix match, requiring a `crate`-headed path to stay within
        // the caller's crate.
        let caller_crate = &ix.files[ix.fns[caller].file].crate_name;
        let mut segs: Vec<&str> = Vec::new();
        for s in qual {
            match s.as_str() {
                "crate" => {
                    if &file.crate_name != caller_crate {
                        return false;
                    }
                }
                "self" | "super" => {}
                other => segs.push(other),
            }
        }
        if segs.is_empty() {
            return true;
        }
        full.ends_with(&segs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn module_paths_follow_workspace_layout() {
        let cases: &[(&str, &str, &[&str])] = &[
            ("crates/nn/src/lib.rs", "pgmr_nn", &[]),
            ("crates/nn/src/layers/conv.rs", "pgmr_nn", &["layers", "conv"]),
            ("crates/nn/src/layers/mod.rs", "pgmr_nn", &["layers"]),
            ("crates/core/src/system.rs", "polygraph_mr", &["system"]),
            ("crates/serve/src/main.rs", "pgmr_serve", &[]),
            ("crates/tensor/tests/gemm.rs", "pgmr_tensor", &["gemm"]),
            ("src/main.rs", "pgmr", &[]),
        ];
        for (path, want_crate, want_mods) in cases {
            let (c, m) = module_path_for(path);
            assert_eq!(&c, want_crate, "{path}");
            assert_eq!(m, *want_mods, "{path}");
        }
    }

    fn build(files: &[(&str, &str)]) -> WorkspaceIndex {
        let mut ix = WorkspaceIndex::default();
        for (path, src) in files {
            let lexed = lex(src);
            ix.add_file(path, &lexed, false, &[], &[]);
        }
        ix
    }

    fn id_of(ix: &WorkspaceIndex, qualified: &str) -> FnId {
        (0..ix.fns.len())
            .find(|&i| ix.qualified_name(i) == qualified)
            .unwrap_or_else(|| panic!("no fn {qualified}"))
    }

    #[test]
    fn self_qualified_calls_resolve_to_impl_type() {
        let ix = build(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S { fn a(&self) { Self::b(); } fn b() {} }\n\
             struct T;\nimpl T { fn b() {} }\n",
        )]);
        let r = Resolver::new(&ix);
        let a = id_of(&ix, "pgmr_a::S::a");
        let call = ix.fns[a].calls.iter().find(|c| c.path.last().unwrap() == "b").unwrap();
        let got = r.resolve(&ix, a, call);
        assert_eq!(got, vec![id_of(&ix, "pgmr_a::S::b")]);
    }

    #[test]
    fn module_qualified_free_fns_filter_by_suffix() {
        let ix = build(&[
            ("crates/nn/src/pool.rs", "pub fn global() {}\n"),
            ("crates/obs/src/lib.rs", "pub fn global() {}\n"),
            (
                "crates/core/src/lib.rs",
                "fn f() { pgmr_nn::pool::global(); pool::global(); pgmr_obs::global(); }\n",
            ),
        ]);
        let r = Resolver::new(&ix);
        let f = id_of(&ix, "polygraph_mr::f");
        let pool_global = id_of(&ix, "pgmr_nn::pool::global");
        let obs_global = id_of(&ix, "pgmr_obs::global");
        let calls = &ix.fns[f].calls;
        assert_eq!(r.resolve(&ix, f, &calls[0]), vec![pool_global]);
        assert_eq!(r.resolve(&ix, f, &calls[1]), vec![pool_global]);
        assert_eq!(r.resolve(&ix, f, &calls[2]), vec![obs_global]);
    }

    #[test]
    fn bare_calls_prefer_same_file_then_uses() {
        let ix = build(&[
            ("crates/a/src/lib.rs", "pub fn work() {}\n"),
            ("crates/b/src/lib.rs", "use pgmr_a::work;\nfn f() { work(); }\n"),
            ("crates/c/src/lib.rs", "pub fn work() {}\nfn g() { work(); }\n"),
        ]);
        let r = Resolver::new(&ix);
        let f = id_of(&ix, "pgmr_b::f");
        let g = id_of(&ix, "pgmr_c::g");
        let call_f = &ix.fns[f].calls[0];
        let call_g = &ix.fns[g].calls[0];
        assert_eq!(r.resolve(&ix, f, call_f), vec![id_of(&ix, "pgmr_a::work")]);
        assert_eq!(r.resolve(&ix, g, call_g), vec![id_of(&ix, "pgmr_c::work")]);
    }

    #[test]
    fn method_calls_fan_out_to_all_methods_of_that_name() {
        let ix = build(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S { fn go(&self) {} }\nstruct T;\nimpl T { fn go(&self) {} }\n\
             fn f(s: &S) { s.go(); }\n",
        )]);
        let r = Resolver::new(&ix);
        let f = id_of(&ix, "pgmr_a::f");
        let got = r.resolve(&ix, f, &ix.fns[f].calls[0]);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn trait_qualified_calls_reach_impls_and_defaults() {
        let ix = build(&[(
            "crates/a/src/lib.rs",
            "trait L { fn fwd(&self) { self.aux(); } fn aux(&self); }\n\
             struct S;\nimpl L for S { fn aux(&self) {} }\n\
             fn f(x: &S) { L::fwd(x); }\n",
        )]);
        let r = Resolver::new(&ix);
        let f = id_of(&ix, "pgmr_a::f");
        let call = ix.fns[f].calls.iter().find(|c| c.path == ["L", "fwd"]).unwrap();
        let got = r.resolve(&ix, f, call);
        assert_eq!(got, vec![id_of(&ix, "pgmr_a::L::fwd")]);
    }
}
