//! The item indexer: turns each file's token stream into *items with
//! facts* — functions (with their impl/trait owner, module path, and
//! whether they take `self`), `use` declarations, and, per function
//! body, the four fact kinds the semantic rules consume: call sites
//! (with closure-region tracking), allocating-constructor sites, lock
//! acquisitions, and worker-pool `run` dispatches.
//!
//! The indexer is still lexical — it never type-checks — but it is
//! *structural*: it brace-matches `mod`/`impl`/`trait`/`fn` bodies, so
//! every fact is attributed to the function that executes it. The
//! resolver ([`crate::resolve`]) and call graph ([`crate::callgraph`])
//! build on this to answer workspace-wide reachability questions.

use crate::lexer::{Lexed, Token, TokenKind};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written: `["foo"]` for a bare call, `["Vec",
    /// "new"]` for a qualified call, the bare method name for `.m(…)`.
    pub path: Vec<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// True when the call happens inside a closure literal.
    pub in_closure: bool,
    /// 1-based line of the callee name token.
    pub line: usize,
    /// 1-based column of the callee name token.
    pub col: usize,
}

/// One allocating-constructor site (`Vec::new`, `vec!`, `.collect()`, …).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// The constructor, normalized (`Vec::new`, `vec!`, `collect`, …).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// One lock acquisition site (`recv.lock()`, `guarded.read()`, …).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The lock's identity: the final receiver segment (`stats` for
    /// `self.shared.stats.lock()`). Field names, not types — two locks
    /// sharing a field name alias into one identity (documented limit).
    pub name: String,
    /// The full receiver chain as written, for messages.
    pub receiver: String,
    /// True when the acquisition's statement is a `let` binding — the
    /// guard outlives the statement. A non-`let` acquisition is a
    /// statement temporary whose guard dies at the semicolon, so it
    /// never enters the held set (it can still form the *second* half
    /// of an ordering pair).
    pub let_bound: bool,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// One worker-pool dispatch: `.run(…)` on a receiver that is
/// recognizably a pool (`pool::global()`, a `WorkerPool`, or any
/// binding whose name contains "pool").
#[derive(Debug, Clone)]
pub struct PoolRunSite {
    /// The receiver chain as written (`self.pool`, `pgmr_nn::pool::global()`).
    pub receiver: String,
    /// True when the dispatch itself sits inside a closure literal.
    pub in_closure: bool,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// One indexed function (free fn, inherent/trait method, or trait
/// default), with every fact the semantic rules need about its body.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Inline `mod` path within the file (file-level path comes from
    /// [`FileIndex::module_path`]).
    pub modules: Vec<String>,
    /// `impl Type` / `trait Type` owner, if any.
    pub self_type: Option<String>,
    /// The trait in `impl Trait for Type`, if any.
    pub trait_name: Option<String>,
    /// True when the parameter list contains `self`.
    pub has_self: bool,
    /// Index of the owning file in [`WorkspaceIndex::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when the definition sits in test code (test file or
    /// `#[cfg(test)]`/`#[test]` region).
    pub in_test: bool,
    /// Rules for which this function is a traversal boundary (via a
    /// `pgmr-lint: boundary(rule): reason` directive on its definition).
    pub boundaries: Vec<String>,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Allocating-constructor sites in body order.
    pub allocs: Vec<AllocSite>,
    /// Lock acquisitions in body order.
    pub locks: Vec<LockSite>,
    /// Worker-pool dispatches in body order.
    pub pool_runs: Vec<PoolRunSite>,
}

/// One `use` declaration leaf: `alias` names `path` in this file.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// The name the file refers to (`Member`, or the `as` alias).
    pub alias: String,
    /// Full path segments as written (`["polygraph_mr", "ensemble",
    /// "Member"]`, `["crate", "pool", "WorkerPool"]`).
    pub path: Vec<String>,
}

/// Everything indexed from one file.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path, forward slashes.
    pub relpath: String,
    /// Crate module name derived from the path (`pgmr_nn`,
    /// `polygraph_mr`); see [`crate::resolve::crate_name_for_path`].
    pub crate_name: String,
    /// Module path derived from the file's location under `src/`.
    pub module_path: Vec<String>,
    /// Indices into [`WorkspaceIndex::fns`] for functions in this file.
    pub fns: Vec<usize>,
    /// `use` declarations in this file.
    pub uses: Vec<UseItem>,
}

/// The workspace-wide index the semantic rules and call graph run over.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Per-file indexes, in input order.
    pub files: Vec<FileIndex>,
    /// All indexed functions, flat; `FnId` is an index into this.
    pub fns: Vec<FnItem>,
}

/// Identifier of an indexed function: an index into [`WorkspaceIndex::fns`].
pub type FnId = usize;

impl WorkspaceIndex {
    /// Indexes one file into the workspace index. `test_lines` are the
    /// `#[cfg(test)]`/`#[test]` line ranges from the rule context;
    /// `boundary_lines` maps a definition line to the rules it bounds
    /// (from `pgmr-lint: boundary(rule): reason` directives).
    pub fn add_file(
        &mut self,
        relpath: &str,
        lexed: &Lexed,
        test_file: bool,
        test_lines: &[(usize, usize)],
        boundary_lines: &[(usize, String)],
    ) {
        let file_id = self.files.len();
        let (crate_name, module_path) = crate::resolve::module_path_for(relpath);
        let mut file = FileIndex {
            relpath: relpath.to_string(),
            crate_name,
            module_path,
            fns: Vec::new(),
            uses: Vec::new(),
        };
        let mut walker = Walker {
            toks: &lexed.tokens,
            file_id,
            test_file,
            test_lines,
            boundary_lines,
            fns: &mut self.fns,
            file: &mut file,
        };
        walker.walk_items(0, lexed.tokens.len(), &mut Vec::new(), None, None);
        self.files.push(file);
    }

    /// Total number of call sites across every indexed function.
    pub fn total_calls(&self) -> usize {
        self.fns.iter().map(|f| f.calls.len()).sum()
    }

    /// A function's qualified display path:
    /// `crate::mods::Type::name` (file-level and inline mods merged).
    pub fn qualified_name(&self, f: FnId) -> String {
        let fun = &self.fns[f];
        let file = &self.files[fun.file];
        let mut parts: Vec<&str> = vec![&file.crate_name];
        parts.extend(file.module_path.iter().map(String::as_str));
        parts.extend(fun.modules.iter().map(String::as_str));
        if let Some(t) = &fun.self_type {
            parts.push(t);
        }
        parts.push(&fun.name);
        parts.join("::")
    }

    /// `qualified_name` plus the definition site, for witness chains.
    pub fn describe(&self, f: FnId) -> String {
        let fun = &self.fns[f];
        format!("{} ({}:{})", self.qualified_name(f), self.files[fun.file].relpath, fun.line)
    }
}

/// Allocating constructors recognized as `Type::ctor` qualified calls.
const ALLOC_QUALIFIED: &[(&str, &str)] = &[("Vec", "new"), ("Box", "new"), ("String", "from")];

/// Allocating constructors recognized as `.method()` calls.
const ALLOC_METHODS: &[&str] = &["to_vec", "collect"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Keywords that look like `ident (` but are not calls.
const NOT_CALLS: &[&str] =
    &["if", "while", "for", "match", "return", "fn", "loop", "move", "in", "as", "let", "else"];

struct Walker<'a> {
    toks: &'a [Token],
    file_id: usize,
    test_file: bool,
    test_lines: &'a [(usize, usize)],
    boundary_lines: &'a [(usize, String)],
    fns: &'a mut Vec<FnItem>,
    file: &'a mut FileIndex,
}

impl<'a> Walker<'a> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
    }

    fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }

    fn in_test(&self, line: usize) -> bool {
        self.test_file || self.test_lines.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Index of the token after the `{…}` (or `(…)`, `[…]`, `<…>`)
    /// group opening at `open`; `end` bounds the scan.
    fn skip_group(&self, open: usize, end: usize, open_c: &str, close_c: &str) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.is_punct(i, open_c) {
                depth += 1;
            } else if self.is_punct(i, close_c) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Walks an item-position token range: modules, impls, traits, fns,
    /// uses. `modules` is the inline-mod stack; `self_type`/`trait_name`
    /// the enclosing impl/trait context.
    fn walk_items(
        &mut self,
        start: usize,
        end: usize,
        modules: &mut Vec<String>,
        self_type: Option<&str>,
        trait_name: Option<&str>,
    ) {
        let mut i = start;
        while i < end {
            if self.is_ident(i, "mod")
                && self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                let name = self.toks[i + 1].text.clone();
                if self.is_punct(i + 2, "{") {
                    let body_end = self.skip_group(i + 2, end, "{", "}");
                    modules.push(name);
                    self.walk_items(i + 3, body_end - 1, modules, None, None);
                    modules.pop();
                    i = body_end;
                } else {
                    i += 2; // out-of-line `mod x;` — covered by file layout
                }
            } else if self.is_ident(i, "impl") {
                i = self.walk_impl(i, end, modules);
            } else if self.is_ident(i, "trait")
                && self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                let name = self.toks[i + 1].text.clone();
                let mut j = i + 2;
                while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                    if self.is_punct(j, "<") {
                        j = self.skip_group(j, end, "<", ">");
                    } else {
                        j += 1;
                    }
                }
                if self.is_punct(j, "{") {
                    let body_end = self.skip_group(j, end, "{", "}");
                    self.walk_items(j + 1, body_end - 1, modules, Some(&name), None);
                    i = body_end;
                } else {
                    i = j + 1;
                }
            } else if self.is_ident(i, "fn")
                && self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                i = self.walk_fn(i, end, modules, self_type, trait_name);
            } else if self.is_ident(i, "use") {
                i = self.walk_use(i + 1, end);
            } else {
                i += 1;
            }
        }
    }

    /// Parses an `impl` header (`impl<…> Trait for Type<…> {`) and walks
    /// its body with the owner context set. Returns the index after it.
    fn walk_impl(&mut self, at: usize, end: usize, modules: &mut Vec<String>) -> usize {
        let mut j = at + 1;
        if self.is_punct(j, "<") {
            j = self.skip_group(j, end, "<", ">");
        }
        // Collect path segments up to `for`, `where`, `{`, or `;`.
        let mut first: Vec<String> = Vec::new();
        let mut second: Vec<String> = Vec::new();
        let mut saw_for = false;
        while j < end {
            if self.is_punct(j, "{") || self.is_punct(j, ";") {
                break;
            }
            if self.is_ident(j, "where") {
                // Skip the where clause to the body.
                while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                    j += 1;
                }
                break;
            }
            if self.is_ident(j, "for") {
                saw_for = true;
                j += 1;
                continue;
            }
            if self.is_punct(j, "<") {
                j = self.skip_group(j, end, "<", ">");
                continue;
            }
            if let Some(t) = self.tok(j) {
                if t.kind == TokenKind::Ident && t.text != "dyn" && t.text != "mut" {
                    if saw_for {
                        second.push(t.text.clone());
                    } else {
                        first.push(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        let (ty, tr) = if saw_for {
            (second.last().cloned(), first.last().cloned())
        } else {
            (first.last().cloned(), None)
        };
        if self.is_punct(j, "{") {
            let body_end = self.skip_group(j, end, "{", "}");
            self.walk_items(j + 1, body_end - 1, modules, ty.as_deref(), tr.as_deref());
            body_end
        } else {
            j + 1
        }
    }

    /// Parses one `use` declaration into leaf aliases. Handles nested
    /// groups (`use a::{b, c::{d as e}}`) and ignores globs.
    fn walk_use(&mut self, at: usize, end: usize) -> usize {
        let mut i = at;
        if self.is_ident(i, "pub") {
            i += 1;
        }
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut i, end, &mut prefix);
        while i < end && !self.is_punct(i, ";") {
            i += 1;
        }
        i + 1
    }

    fn use_tree(&mut self, i: &mut usize, end: usize, prefix: &mut Vec<String>) {
        let depth_here = prefix.len();
        while *i < end {
            if self.is_punct(*i, ";") || self.is_punct(*i, "}") {
                return;
            }
            if self.is_punct(*i, "{") {
                let group_depth = prefix.len();
                *i += 1;
                loop {
                    self.use_tree(i, end, prefix);
                    prefix.truncate(group_depth);
                    if self.is_punct(*i, ",") {
                        *i += 1;
                        continue;
                    }
                    break;
                }
                if self.is_punct(*i, "}") {
                    *i += 1;
                }
                return;
            }
            if self.is_punct(*i, ",") {
                // Leaf ended at the previous segment.
                self.push_use_leaf(prefix);
                return;
            }
            if self.is_ident(*i, "as") {
                let alias = self.tok(*i + 1).map(|t| t.text.clone()).unwrap_or_default();
                if !alias.is_empty() && alias != "_" {
                    self.file.uses.push(UseItem { alias, path: prefix.clone() });
                }
                *i += 2;
                // Consume to the leaf end.
                while *i < end
                    && !self.is_punct(*i, ",")
                    && !self.is_punct(*i, "}")
                    && !self.is_punct(*i, ";")
                {
                    *i += 1;
                }
                prefix.truncate(depth_here);
                return;
            }
            if let Some(t) = self.tok(*i) {
                if t.kind == TokenKind::Ident {
                    prefix.push(t.text.clone());
                    *i += 1;
                    if self.is_punct(*i, "::") {
                        *i += 1;
                        continue;
                    }
                    if self.is_ident(*i, "as") {
                        continue; // the `as` branch above aliases this leaf
                    }
                    // Leaf.
                    self.push_use_leaf(prefix);
                    prefix.truncate(depth_here);
                    // Advance past leaf; caller handles `,`/`}`.
                    return;
                }
                if t.kind == TokenKind::Punct && t.text == "*" {
                    *i += 1; // glob — untracked
                    return;
                }
            }
            *i += 1;
        }
    }

    fn push_use_leaf(&mut self, path: &[String]) {
        if let Some(last) = path.last() {
            if last != "self" {
                self.file.uses.push(UseItem { alias: last.clone(), path: path.to_vec() });
            } else if path.len() >= 2 {
                // `use a::b::{self}` names `b`.
                let alias = path[path.len() - 2].clone();
                self.file.uses.push(UseItem { alias, path: path[..path.len() - 1].to_vec() });
            }
        }
    }

    /// Parses one `fn` definition (signature + optional body), records
    /// the [`FnItem`], and scans the body for facts. Returns the index
    /// after the definition.
    fn walk_fn(
        &mut self,
        at: usize,
        end: usize,
        modules: &mut Vec<String>,
        self_type: Option<&str>,
        trait_name: Option<&str>,
    ) -> usize {
        let name_tok = &self.toks[at + 1];
        let name = name_tok.text.clone();
        let line = self.toks[at].line;
        let mut j = at + 2;
        if self.is_punct(j, "<") {
            j = self.skip_group(j, end, "<", ">");
        }
        // Parameter list.
        let mut has_self = false;
        if self.is_punct(j, "(") {
            let params_end = self.skip_group(j, end, "(", ")");
            for k in j + 1..params_end.saturating_sub(1) {
                if self.is_ident(k, "self") {
                    has_self = true;
                    break;
                }
            }
            j = params_end;
        }
        // Signature tail (return type, where clause) up to body or `;`.
        while j < end && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
            j += 1;
        }
        let boundaries: Vec<String> = self
            .boundary_lines
            .iter()
            .filter(|&&(l, _)| l == line)
            .map(|(_, r)| r.clone())
            .collect();
        let fn_id = self.fns.len();
        self.fns.push(FnItem {
            name,
            modules: modules.clone(),
            self_type: self_type.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            has_self,
            file: self.file_id,
            line,
            in_test: self.in_test(line),
            boundaries,
            calls: Vec::new(),
            allocs: Vec::new(),
            locks: Vec::new(),
            pool_runs: Vec::new(),
        });
        self.file.fns.push(fn_id);
        if self.is_punct(j, "{") {
            let body_end = self.skip_group(j, end, "{", "}");
            self.walk_body(j + 1, body_end - 1, fn_id, modules, self_type, trait_name);
            body_end
        } else {
            j + 1
        }
    }

    /// Scans a function body for facts; nested items (`fn`, `mod`,
    /// `impl`) are indexed separately and skipped here.
    fn walk_body(
        &mut self,
        start: usize,
        end: usize,
        fn_id: FnId,
        modules: &mut Vec<String>,
        self_type: Option<&str>,
        trait_name: Option<&str>,
    ) {
        let closures = closure_regions(self, start, end);
        let in_closure = |i: usize| closures.iter().any(|&(lo, hi)| (lo..hi).contains(&i));
        let mut i = start;
        while i < end {
            // Nested items get their own FnItem; don't double-count.
            if self.is_ident(i, "fn") && self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                i = self.walk_fn(i, end, modules, None, None);
                continue;
            }
            if (self.is_ident(i, "mod")
                && self.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && self.is_punct(i + 2, "{"))
                || self.is_ident(i, "impl")
            {
                // Item-position recursion handles these.
                let save = i;
                self.walk_items(i, end, modules, self_type, trait_name);
                // walk_items consumed through `end`; restart scanning
                // after the nested item by brace-matching it here.
                let mut j = save;
                while j < end && !self.is_punct(j, "{") {
                    j += 1;
                }
                i = if j < end { self.skip_group(j, end, "{", "}") } else { end };
                continue;
            }
            let t = &self.toks[i];
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            // Macro call: `name ! (`/`[`/`{`.
            if self.is_punct(i + 1, "!")
                && (self.is_punct(i + 2, "(")
                    || self.is_punct(i + 2, "[")
                    || self.is_punct(i + 2, "{"))
            {
                if ALLOC_MACROS.contains(&t.text.as_str()) {
                    self.fns[fn_id].allocs.push(AllocSite {
                        what: format!("{}!", t.text),
                        line: t.line,
                        col: t.col,
                    });
                }
                i += 2;
                continue;
            }
            // Call shapes: `name(` possibly with a `::<…>` turbofish.
            let Some(_paren) = self.call_paren(i, end) else {
                i += 1;
                continue;
            };
            if NOT_CALLS.contains(&t.text.as_str()) {
                i += 1;
                continue;
            }
            let is_method = i > start && self.is_punct(i - 1, ".");
            let path = if is_method { vec![t.text.clone()] } else { self.path_backwards(i) };
            let name = t.text.as_str();
            // Fact extraction, most specific first.
            if is_method && name == "lock" {
                let receiver = self.receiver_chain(i - 1);
                let last = receiver.rsplit(['.']).next().unwrap_or(&receiver).to_string();
                let let_bound = self.stmt_has_let(start, i);
                self.fns[fn_id].locks.push(LockSite {
                    name: last,
                    receiver,
                    let_bound,
                    line: t.line,
                    col: t.col,
                });
            } else if is_method && name == "run" {
                let receiver = self.receiver_chain(i - 1);
                if receiver_is_pool(&receiver) {
                    self.fns[fn_id].pool_runs.push(PoolRunSite {
                        receiver,
                        in_closure: in_closure(i),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            if (is_method && ALLOC_METHODS.contains(&name))
                || (!is_method
                    && path.len() == 2
                    && ALLOC_QUALIFIED.contains(&(path[0].as_str(), path[1].as_str())))
            {
                let what = if is_method { name.to_string() } else { path.join("::") };
                self.fns[fn_id].allocs.push(AllocSite { what, line: t.line, col: t.col });
            }
            self.fns[fn_id].calls.push(CallSite {
                path,
                method: is_method,
                in_closure: in_closure(i),
                line: t.line,
                col: t.col,
            });
            i += 1;
        }
    }

    /// Whether the statement containing token `i` starts with `let`:
    /// scan back to the nearest statement boundary (`;`, `{`, `}`),
    /// looking for the keyword on the way.
    fn stmt_has_let(&self, start: usize, i: usize) -> bool {
        let mut j = i;
        while j > start {
            j -= 1;
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
                return false;
            }
            if t.kind == TokenKind::Ident && t.text == "let" {
                return true;
            }
        }
        false
    }

    /// If token `i` heads a call (`name(` or `name::<…>(`), returns the
    /// index of the opening paren.
    fn call_paren(&self, i: usize, end: usize) -> Option<usize> {
        if self.is_punct(i + 1, "(") {
            return Some(i + 1);
        }
        if self.is_punct(i + 1, "::") && self.is_punct(i + 2, "<") {
            let after = self.skip_group(i + 2, end, "<", ">");
            if self.is_punct(after, "(") {
                return Some(after);
            }
        }
        None
    }

    /// Collects the `::`-separated path ending at the ident `i`,
    /// skipping turbofish groups (`Vec::<u8>::new` → `["Vec","new"]`).
    fn path_backwards(&self, i: usize) -> Vec<String> {
        let mut segs = vec![self.toks[i].text.clone()];
        let mut j = i;
        loop {
            if j < 1 || !self.is_punct(j - 1, "::") {
                break;
            }
            let mut k = j - 2; // token before `::`
            if self.is_punct(k, ">") {
                // Skip `<…>` backwards.
                let mut depth = 0usize;
                loop {
                    if self.is_punct(k, ">") {
                        depth += 1;
                    } else if self.is_punct(k, "<") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if k == 0 {
                    break;
                }
                k -= 1;
                if self.is_punct(k, "::") {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                } else {
                    break;
                }
            }
            match self.tok(k) {
                Some(t) if t.kind == TokenKind::Ident => {
                    segs.push(t.text.clone());
                    j = k;
                }
                _ => break,
            }
        }
        segs.reverse();
        segs
    }

    /// The receiver chain before a `.method` at `dot` (the `.` token),
    /// rendered as written: `self.shared.stats`, `pool::global()`.
    fn receiver_chain(&self, dot: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut j = dot; // token index of the `.`; receiver ends at j-1
        loop {
            if j == 0 {
                break;
            }
            let k = j - 1;
            if self.is_punct(k, ")") {
                // A call in the chain (`global()`); skip its parens.
                let mut depth = 0usize;
                let mut m = k;
                loop {
                    if self.is_punct(m, ")") {
                        depth += 1;
                    } else if self.is_punct(m, "(") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if m == 0 {
                        break;
                    }
                    m -= 1;
                }
                parts.push("()".to_string());
                if m == 0 {
                    break;
                }
                j = m;
                continue;
            }
            match self.tok(k) {
                Some(t) if t.kind == TokenKind::Ident => {
                    parts.push(t.text.clone());
                    if k >= 1 && (self.is_punct(k - 1, ".") || self.is_punct(k - 1, "::")) {
                        parts.push(if self.is_punct(k - 1, ".") { "." } else { "::" }.to_string());
                        j = k - 1;
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        parts.reverse();
        parts.concat()
    }
}

/// Whether a `.run(…)` receiver is recognizably a worker pool: names a
/// `WorkerPool`, a `global()` pool accessor, or any binding/field whose
/// name contains "pool". A pool bound to an unrelated name escapes this
/// rule — a documented lexical limit.
fn receiver_is_pool(receiver: &str) -> bool {
    let lower = receiver.to_ascii_lowercase();
    lower.contains("pool") || receiver.contains("WorkerPool") || lower.contains("global()")
}

/// Finds closure-literal token ranges `[start, end)` inside a body: a
/// `|params|`/`||` head plus its expression or block body.
fn closure_regions(w: &Walker<'_>, start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let is_closure_head = if w.is_punct(i, "||") {
            true
        } else if w.is_punct(i, "|") {
            // `|` opens a closure only in expression position.
            i == start
                || w.tok(i - 1).is_some_and(|p| {
                    (p.kind == TokenKind::Punct
                        && ["(", ",", "=", "{", "=>", ";", ":", "&&"].contains(&p.text.as_str()))
                        || (p.kind == TokenKind::Ident
                            && ["move", "return", "else"].contains(&p.text.as_str()))
                })
        } else {
            false
        };
        if !is_closure_head {
            i += 1;
            continue;
        }
        let head_start = i;
        let body_start = if w.is_punct(i, "||") {
            i + 1
        } else {
            // Find the closing `|` of the parameter list.
            let mut k = i + 1;
            let mut depth = 0usize;
            while k < end {
                if w.is_punct(k, "(") || w.is_punct(k, "[") {
                    depth += 1;
                } else if w.is_punct(k, ")") || w.is_punct(k, "]") {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && w.is_punct(k, "|") {
                    break;
                }
                k += 1;
            }
            k + 1
        };
        let body_end = if w.is_punct(body_start, "{") {
            w.skip_group(body_start, end, "{", "}")
        } else {
            // Expression closure: until `,` or `;` at depth 0, or an
            // enclosing group closes.
            let mut k = body_start;
            let mut paren = 0isize;
            let mut brack = 0isize;
            let mut brace = 0isize;
            while k < end {
                let closes_enclosing = (w.is_punct(k, ")") && paren == 0)
                    || (w.is_punct(k, "]") && brack == 0)
                    || (w.is_punct(k, "}") && brace == 0);
                if closes_enclosing {
                    break;
                }
                if paren == 0
                    && brack == 0
                    && brace == 0
                    && (w.is_punct(k, ",") || w.is_punct(k, ";"))
                {
                    break;
                }
                if w.is_punct(k, "(") {
                    paren += 1;
                } else if w.is_punct(k, ")") {
                    paren -= 1;
                } else if w.is_punct(k, "[") {
                    brack += 1;
                } else if w.is_punct(k, "]") {
                    brack -= 1;
                } else if w.is_punct(k, "{") {
                    brace += 1;
                } else if w.is_punct(k, "}") {
                    brace -= 1;
                }
                k += 1;
            }
            k
        };
        out.push((head_start, body_end));
        i = body_start.max(head_start + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index_one(path: &str, src: &str) -> WorkspaceIndex {
        let lexed = lex(src);
        let mut ix = WorkspaceIndex::default();
        ix.add_file(path, &lexed, false, &[], &[]);
        ix
    }

    fn fn_named<'a>(ix: &'a WorkspaceIndex, name: &str) -> &'a FnItem {
        ix.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("fn {name} indexed"))
    }

    #[test]
    fn impl_and_trait_owners_are_recorded() {
        let src = "pub struct Net;\nimpl Net { pub fn fwd(&mut self) {} }\n\
                   trait Layer { fn forward_into(&mut self) { self.fwd2(); } }\n\
                   impl Layer for Net { fn forward_into(&mut self) {} }\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let fwd = fn_named(&ix, "fwd");
        assert_eq!(fwd.self_type.as_deref(), Some("Net"));
        assert!(fwd.has_self);
        let impls: Vec<_> = ix.fns.iter().filter(|f| f.name == "forward_into").collect();
        assert_eq!(impls.len(), 2);
        assert!(impls.iter().any(|f| f.self_type.as_deref() == Some("Layer")));
        assert!(impls
            .iter()
            .any(|f| f.self_type.as_deref() == Some("Net")
                && f.trait_name.as_deref() == Some("Layer")));
    }

    #[test]
    fn calls_and_allocs_are_attributed_to_their_fn() {
        let src = "fn a() { b(); let v: Vec<u32> = (0..3).collect(); }\n\
                   fn b() { let _ = Vec::<u8>::new(); let s = format!(\"x\"); }\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let a = fn_named(&ix, "a");
        assert!(a.calls.iter().any(|c| c.path == ["b"] && !c.method));
        assert_eq!(a.allocs.len(), 1);
        assert_eq!(a.allocs[0].what, "collect");
        let b = fn_named(&ix, "b");
        let whats: Vec<_> = b.allocs.iter().map(|s| s.what.as_str()).collect();
        assert!(whats.contains(&"Vec::new"), "turbofish Vec::<u8>::new missed: {whats:?}");
        assert!(whats.contains(&"format!"));
    }

    #[test]
    fn locks_use_last_receiver_segment() {
        let src = "fn f(s: &S) { let g = s.shared.stats.lock().expect(\"x\"); drop(g); }\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let f = fn_named(&ix, "f");
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].name, "stats");
        assert_eq!(f.locks[0].receiver, "s.shared.stats");
    }

    #[test]
    fn pool_runs_recognize_pool_receivers_only() {
        let src = "fn f(pool: &WorkerPool, engine: &E) {\n\
                   pool.run(jobs());\n\
                   pgmr_nn::pool::global().run(jobs());\n\
                   WorkerPool::new(2).run(jobs());\n\
                   engine.run();\n}\nfn jobs() -> Vec<fn()> { Vec::new() }\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let f = fn_named(&ix, "f");
        assert_eq!(f.pool_runs.len(), 3, "{:?}", f.pool_runs);
    }

    #[test]
    fn closure_calls_are_marked() {
        let src = "fn f(pool: &P) { let jobs = xs.iter().map(|x| work(x)); pool.run(jobs); \
                   direct(); }\nfn work(x: u32) {}\nfn direct() {}\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let f = fn_named(&ix, "f");
        let work = f.calls.iter().find(|c| c.path == ["work"]).expect("work call");
        assert!(work.in_closure);
        let direct = f.calls.iter().find(|c| c.path == ["direct"]).expect("direct call");
        assert!(!direct.in_closure);
    }

    #[test]
    fn move_closures_and_nested_blocks() {
        let src = "fn f() { let j = items.map(|(a, b)| { move || helper(a, b) }); }\n\
                   fn helper(a: u32, b: u32) {}\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let f = fn_named(&ix, "f");
        let h = f.calls.iter().find(|c| c.path == ["helper"]).expect("helper call");
        assert!(h.in_closure);
    }

    #[test]
    fn nested_fns_get_their_own_item() {
        let src = "fn outer() { fn inner() { leaf(); } inner(); }\nfn leaf() {}\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let outer = fn_named(&ix, "outer");
        assert!(outer.calls.iter().any(|c| c.path == ["inner"]));
        assert!(!outer.calls.iter().any(|c| c.path == ["leaf"]), "leaf belongs to inner");
        let inner = fn_named(&ix, "inner");
        assert!(inner.calls.iter().any(|c| c.path == ["leaf"]));
    }

    #[test]
    fn uses_are_collected_with_groups_and_aliases() {
        let src = "use a::b::{C, d as e};\nuse f::g;\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let uses = &ix.files[0].uses;
        let find = |alias: &str| uses.iter().find(|u| u.alias == alias);
        assert_eq!(find("C").expect("C").path, ["a", "b", "C"]);
        assert_eq!(find("e").expect("e").path, ["a", "b", "d"]);
        assert_eq!(find("g").expect("g").path, ["f", "g"]);
    }

    #[test]
    fn qualified_names_include_crate_module_and_type() {
        let src = "impl Conv2d { fn forward_into(&mut self) {} }\n";
        let ix = index_one("crates/nn/src/layers/conv.rs", src);
        let f = ix.fns.iter().position(|f| f.name == "forward_into").expect("indexed");
        assert_eq!(ix.qualified_name(f), "pgmr_nn::layers::conv::Conv2d::forward_into");
    }

    #[test]
    fn inline_mod_path_is_tracked() {
        let src = "mod inner { pub fn f() {} }\n";
        let ix = index_one("crates/x/src/lib.rs", src);
        let f = fn_named(&ix, "f");
        assert_eq!(f.modules, ["inner"]);
    }
}
