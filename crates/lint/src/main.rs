//! The `pgmr-lint` CLI.
//!
//! ```text
//! cargo run -p pgmr-lint -- --workspace --deny --json target/pgmr-lint.json
//! ```
//!
//! Flags:
//! - `--workspace` lint every `.rs` file from the workspace root
//!   (default when no paths are given)
//! - `--root <dir>`     override the root to walk
//! - `--deny`           exit nonzero when any diagnostic remains
//! - `--json <path|->`  write the machine-readable report (`-` = stdout)
//! - `<paths…>`         lint specific files or directories instead
//!
//! Diagnostics print to stdout as `file:line:col: rule: message`; the
//! summary line goes last. Without `--deny` the exit code is 0 even with
//! findings (report-only mode for local iteration).

use std::path::PathBuf;
use std::process::ExitCode;

use pgmr_lint::{find_workspace_root, lint_workspace, LintReport};

struct Args {
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
    deny: bool,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, paths: Vec::new(), deny: false, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {} // the default; accepted for explicitness
            "--deny" => args.deny = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json requires a path argument (or `-`)")?);
            }
            "--help" | "-h" => {
                return Err("usage: pgmr-lint [--workspace] [--root <dir>] [--deny] [--json <path|->] [paths…]"
                    .to_string());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

fn run() -> Result<(LintReport, bool), String> {
    let args = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let root = match args.root {
        Some(root) => root,
        None => find_workspace_root(&cwd)
            .ok_or("no workspace root found above the current directory (pass --root)")?,
    };
    let report = if args.paths.is_empty() {
        lint_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?
    } else {
        let mut report = LintReport::default();
        for path in &args.paths {
            let full = if path.is_absolute() { path.clone() } else { cwd.join(path) };
            let files = if full.is_dir() {
                pgmr_lint::workspace_files(&full)
                    .map_err(|e| format!("walking {}: {e}", full.display()))?
            } else {
                vec![full]
            };
            for file in files {
                let source = std::fs::read_to_string(&file)
                    .map_err(|e| format!("reading {}: {e}", file.display()))?;
                let rel = file.strip_prefix(&root).unwrap_or(&file);
                let rel = rel.to_string_lossy().replace('\\', "/");
                report.diagnostics.extend(pgmr_lint::lint_source(&rel, &source));
                report.files_scanned += 1;
            }
        }
        report.sort();
        report
    };
    if let Some(json) = &args.json {
        let body = report.to_json();
        if json == "-" {
            println!("{body}");
        } else {
            std::fs::write(json, body).map_err(|e| format!("writing {json}: {e}"))?;
        }
    }
    Ok((report, args.deny))
}

fn main() -> ExitCode {
    match run() {
        Ok((report, deny)) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!(
                "pgmr-lint: {} diagnostic{} across {} file{}",
                report.diagnostics.len(),
                if report.diagnostics.len() == 1 { "" } else { "s" },
                report.files_scanned,
                if report.files_scanned == 1 { "" } else { "s" },
            );
            if deny && !report.diagnostics.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("pgmr-lint: {message}");
            ExitCode::FAILURE
        }
    }
}
