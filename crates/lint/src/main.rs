//! The `pgmr-lint` CLI.
//!
//! ```text
//! cargo run -p pgmr-lint -- --workspace --deny --json target/pgmr-lint.json
//! ```
//!
//! Flags:
//! - `--workspace` lint every `.rs` file from the workspace root
//!   (default when no paths are given)
//! - `--root <dir>`     override the root to walk
//! - `--deny`           exit 1 when any diagnostic remains
//! - `--json <path|->`  write the machine-readable report (`-` = stdout)
//! - `--fix-allows`     remove unused `allow(…)` directives (dry run;
//!   add `--write` to rewrite the files)
//! - `<paths…>`         lint specific files or directories instead
//!
//! Diagnostics print to stdout as `file:line:col: rule: message` (with
//! indented witness chains for the call-graph rules); the summary line
//! goes last. Exit codes: 0 clean (or report-only findings without
//! `--deny`), 1 diagnostics found under `--deny`, 2 parse/IO/usage
//! failure — so CI can fail on breakage even in report-only mode.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pgmr_lint::{find_workspace_root, lint_sources, LintReport};

struct Args {
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
    deny: bool,
    json: Option<String>,
    fix_allows: bool,
    write: bool,
}

const USAGE: &str =
    "usage: pgmr-lint [--workspace] [--root <dir>] [--deny] [--json <path|->] [--fix-allows [--write]] [paths…]";

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: None,
        paths: Vec::new(),
        deny: false,
        json: None,
        fix_allows: false,
        write: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {} // the default; accepted for explicitness
            "--deny" => args.deny = true,
            "--fix-allows" => args.fix_allows = true,
            "--write" => args.write = true,
            "--root" => {
                let dir = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json requires a path argument (or `-`)")?);
            }
            "--help" | "-h" => return Ok(None),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.write && !args.fix_allows {
        return Err("--write only makes sense with --fix-allows".to_string());
    }
    Ok(Some(args))
}

fn run(args: &Args) -> Result<(LintReport, PathBuf), String> {
    let t0 = std::time::Instant::now(); // pgmr-lint: allow(wall-clock): CLI-level timing fed to the CI perf report; never on a deterministic-output path
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let root = match &args.root {
        Some(root) => root.clone(),
        None => find_workspace_root(&cwd)
            .ok_or("no workspace root found above the current directory (pass --root)")?,
    };
    let mut report = if args.paths.is_empty() {
        let sources = pgmr_lint::read_workspace_sources(&root)
            .map_err(|e| format!("walking {}: {e}", root.display()))?;
        lint_sources(&sources)
    } else {
        let mut sources: Vec<(String, String)> = Vec::new();
        for path in &args.paths {
            let full = if path.is_absolute() { path.clone() } else { cwd.join(path) };
            let files = if full.is_dir() {
                pgmr_lint::workspace_files(&full)
                    .map_err(|e| format!("walking {}: {e}", full.display()))?
            } else {
                vec![full]
            };
            for file in files {
                let source = std::fs::read_to_string(&file)
                    .map_err(|e| format!("reading {}: {e}", file.display()))?;
                let rel = file.strip_prefix(&root).unwrap_or(&file);
                sources.push((rel.to_string_lossy().replace('\\', "/"), source));
            }
        }
        lint_sources(&sources)
    };
    report.wall_ms = Some(t0.elapsed().as_millis() as u64);
    if let Some(json) = &args.json {
        let body = report.to_json();
        if json == "-" {
            println!("{body}");
        } else {
            std::fs::write(json, body).map_err(|e| format!("writing {json}: {e}"))?;
        }
    }
    Ok((report, root))
}

fn fix_allows(args: &Args, report: &LintReport, root: &Path) -> Result<(), String> {
    let fixes = pgmr_lint::fix::plan(root, report).map_err(|e| format!("planning fixes: {e}"))?;
    if fixes.is_empty() {
        println!("pgmr-lint: no unused allows to remove");
        return Ok(());
    }
    for f in &fixes {
        for (line, directive) in &f.removals {
            let verb = if args.write { "removed" } else { "would remove" };
            println!("pgmr-lint: {verb} {}:{line}: {directive}", f.relpath);
        }
    }
    if args.write {
        pgmr_lint::fix::write(root, &fixes).map_err(|e| format!("writing fixes: {e}"))?;
    } else {
        println!("pgmr-lint: dry run — pass --write to apply");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("pgmr-lint: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (report, root) = match run(&args) {
        Ok(ok) => ok,
        Err(message) => {
            eprintln!("pgmr-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if args.fix_allows {
        return match fix_allows(&args, &report, &root) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("pgmr-lint: {message}");
                ExitCode::from(2)
            }
        };
    }
    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "pgmr-lint: {} diagnostic{} across {} file{} ({} fns, {} calls indexed)",
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 { "" } else { "s" },
        report.files_scanned,
        if report.files_scanned == 1 { "" } else { "s" },
        report.indexed_fns,
        report.indexed_calls,
    );
    if args.deny && !report.diagnostics.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
