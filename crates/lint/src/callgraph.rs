//! The workspace call graph: resolved call edges plus BFS reachability
//! with parent pointers, so every semantic diagnostic can carry a
//! *witness chain* — the concrete call path from an invariant root to
//! the offending function.

use std::collections::VecDeque;

use crate::index::{FnId, WorkspaceIndex};
use crate::resolve::Resolver;

/// `stop(f)` for [`Reach::compute`] that stops at functions carrying a
/// `pgmr-lint: boundary(rule)` directive.
pub fn boundary_stop<'a>(ix: &'a WorkspaceIndex, rule: &'a str) -> impl Fn(FnId) -> bool + 'a {
    move |f| ix.fns[f].boundaries.iter().any(|b| b == rule)
}

/// Resolved call edges, one adjacency list per indexed function.
pub struct CallGraph {
    /// `edges[f]` = deduplicated candidate callees of `f`.
    pub edges: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Resolves every call site through `resolver` and builds the
    /// adjacency lists.
    pub fn build(ix: &WorkspaceIndex, resolver: &Resolver) -> CallGraph {
        let mut edges: Vec<Vec<FnId>> = Vec::with_capacity(ix.fns.len());
        for caller in 0..ix.fns.len() {
            let mut out: Vec<FnId> = Vec::new();
            for call in &ix.fns[caller].calls {
                out.extend(resolver.resolve(ix, caller, call));
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        CallGraph { edges }
    }
}

/// A reachability query result: which functions are reachable from the
/// roots, and through which parent (for witness extraction).
pub struct Reach {
    /// `parent[f]` = the function we reached `f` from (`None` for
    /// roots and unreached functions).
    pub parent: Vec<Option<FnId>>,
    /// `seen[f]` = reachable (roots included).
    pub seen: Vec<bool>,
}

impl Reach {
    /// BFS from `roots`. A function where `stop` answers true marks the
    /// edge of the rule's world: it still lands on the reachable set
    /// (so a witness can end there), but traversal does not descend out
    /// of it — rules also skip reporting inside such functions (see
    /// [`boundary_stop`] and the per-rule frontier predicates).
    pub fn compute(graph: &CallGraph, roots: &[FnId], stop: impl Fn(FnId) -> bool) -> Reach {
        let n = graph.edges.len();
        let mut parent: Vec<Option<FnId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            if stop(f) {
                continue;
            }
            for &g in &graph.edges[f] {
                if !seen[g] {
                    seen[g] = true;
                    parent[g] = Some(f);
                    queue.push_back(g);
                }
            }
        }
        Reach { parent, seen }
    }

    /// The id chain root → … → `f` following parent pointers.
    pub fn chain(&self, f: FnId) -> Vec<FnId> {
        let mut ids = vec![f];
        let mut cur = f;
        while let Some(p) = self.parent[cur] {
            ids.push(p);
            cur = p;
        }
        ids.reverse();
        ids
    }

    /// The witness chain root → … → `f`, as qualified names with
    /// definition sites.
    pub fn witness(&self, ix: &WorkspaceIndex, f: FnId) -> Vec<String> {
        self.chain(f).into_iter().map(|id| ix.describe(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(src: &str) -> (WorkspaceIndex, CallGraph) {
        let mut ix = WorkspaceIndex::default();
        ix.add_file("crates/a/src/lib.rs", &lex(src), false, &[], &[]);
        let r = Resolver::new(&ix);
        let g = CallGraph::build(&ix, &r);
        (ix, g)
    }

    fn id_of(ix: &WorkspaceIndex, name: &str) -> FnId {
        (0..ix.fns.len()).find(|&i| ix.fns[i].name == name).expect("fn exists")
    }

    #[test]
    fn bfs_reaches_transitively_and_records_witnesses() {
        let (ix, g) = build("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n");
        let (a, c, island) = (id_of(&ix, "a"), id_of(&ix, "c"), id_of(&ix, "island"));
        let reach = Reach::compute(&g, &[a], boundary_stop(&ix, "hot-path-alloc"));
        assert!(reach.seen[c]);
        assert!(!reach.seen[island]);
        let w = reach.witness(&ix, c);
        assert_eq!(w.len(), 3);
        assert!(w[0].starts_with("pgmr_a::a "));
        assert!(w[2].starts_with("pgmr_a::c "));
    }

    #[test]
    fn boundaries_stop_descent_but_stay_reachable() {
        let src = "fn a() { shim(); }\nfn shim() { deep(); }\nfn deep() {}\n";
        let mut ix = WorkspaceIndex::default();
        let lexed = lex(src);
        // `shim` is defined on line 2; mark it as a hot-path boundary.
        ix.add_file(
            "crates/a/src/lib.rs",
            &lexed,
            false,
            &[],
            &[(2, "hot-path-alloc".to_string())],
        );
        let r = Resolver::new(&ix);
        let g = CallGraph::build(&ix, &r);
        let (a, shim, deep) = (id_of(&ix, "a"), id_of(&ix, "shim"), id_of(&ix, "deep"));
        let reach = Reach::compute(&g, &[a], boundary_stop(&ix, "hot-path-alloc"));
        assert!(reach.seen[shim], "the boundary fn itself is reachable");
        assert!(!reach.seen[deep], "descent stops at the boundary");
        // A different rule ignores this boundary.
        let other = Reach::compute(&g, &[a], boundary_stop(&ix, "nested-pool-run"));
        assert!(other.seen[deep]);
    }
}
