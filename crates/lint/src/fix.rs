//! `--fix-allows`: mechanical removal of `unused-allow` suppressions.
//!
//! The linter already proves which `pgmr-lint: allow(…)` directives
//! suppress nothing; this module removes exactly those comments from
//! the source — the whole line when the directive stands alone, or the
//! trailing comment (plus the whitespace before it) when it follows
//! code. Everything else in the file is preserved byte-for-byte, so a
//! file with no unused allows round-trips unchanged. The CLI runs this
//! as a dry run by default and only rewrites files under `--write`.

use std::fs;
use std::io;
use std::path::Path;

use crate::allow::MARKER;
use crate::diag::LintReport;
use crate::lexer;

/// One file's planned edit.
#[derive(Debug)]
pub struct FileFix {
    /// Workspace-relative path.
    pub relpath: String,
    /// `(line, removed directive text)` per removal, in line order.
    pub removals: Vec<(usize, String)>,
    /// The file content after removal.
    pub new_content: String,
}

/// Removes the `pgmr-lint:` directive comments sitting on the given
/// 1-based `lines`. Returns the new content and what was removed; a
/// line without a recognizable directive comment is left untouched.
pub fn remove_directives(source: &str, lines: &[usize]) -> (String, Vec<(usize, String)>) {
    let lexed = lexer::lex(source);
    let mut removed: Vec<(usize, String)> = Vec::new();
    let mut out = String::with_capacity(source.len());
    for (i, raw) in source.split_inclusive('\n').enumerate() {
        let lineno = i + 1;
        if !lines.contains(&lineno) {
            out.push_str(raw);
            continue;
        }
        let Some(comment) = lexed.comments.iter().find(|c| {
            c.line == lineno
                && c.text.trim_start_matches(['/', '!']).trim_start().starts_with(MARKER)
        }) else {
            out.push_str(raw);
            continue;
        };
        let needle = format!("//{}", comment.text);
        let Some(at) = raw.rfind(&needle) else {
            out.push_str(raw);
            continue;
        };
        let prefix = &raw[..at];
        let ending = &raw[at + needle.len()..]; // "\n", "\r\n", or ""
        if prefix.trim().is_empty() {
            // Directive-only line: drop it entirely, newline included.
        } else {
            // Trailing directive: keep the code, trim the gap.
            out.push_str(prefix.trim_end());
            out.push_str(ending.trim_start_matches([' ', '\t']));
        }
        removed.push((lineno, format!("//{}", comment.text.trim_end())));
    }
    (out, removed)
}

/// Plans the removal of every `unused-allow` the report found, reading
/// each affected file under `root`.
pub fn plan(root: &Path, report: &LintReport) -> io::Result<Vec<FileFix>> {
    let mut by_file: Vec<(&str, Vec<usize>)> = Vec::new();
    for d in report.diagnostics.iter().filter(|d| d.rule == "unused-allow") {
        match by_file.iter_mut().find(|(f, _)| *f == d.file) {
            Some((_, lines)) => lines.push(d.line),
            None => by_file.push((&d.file, vec![d.line])),
        }
    }
    let mut fixes = Vec::new();
    for (relpath, lines) in by_file {
        let source = fs::read_to_string(root.join(relpath))?;
        let (new_content, removals) = remove_directives(&source, &lines);
        if !removals.is_empty() {
            fixes.push(FileFix { relpath: relpath.to_string(), removals, new_content });
        }
    }
    Ok(fixes)
}

/// Writes the planned edits to disk.
pub fn write(root: &Path, fixes: &[FileFix]) -> io::Result<()> {
    for f in fixes {
        fs::write(root.join(&f.relpath), &f.new_content)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_directive_line_is_removed_whole() {
        let src = "fn a() {}\n// pgmr-lint: allow(float-eq): stale\nfn b() {}\n";
        let (out, removed) = remove_directives(src, &[2]);
        assert_eq!(out, "fn a() {}\nfn b() {}\n");
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].0, 2);
        assert!(removed[0].1.contains("allow(float-eq)"));
    }

    #[test]
    fn trailing_directive_keeps_the_code() {
        let src = "let x = 1; // pgmr-lint: allow(float-eq): stale\nnext();\n";
        let (out, _) = remove_directives(src, &[1]);
        assert_eq!(out, "let x = 1;\nnext();\n");
    }

    #[test]
    fn untouched_lines_round_trip_byte_identical() {
        let src = "fn a() {}\n// pgmr-lint: allow(float-eq): used elsewhere\nfn b() {}\n";
        let (out, removed) = remove_directives(src, &[]);
        assert_eq!(out, src);
        assert!(removed.is_empty());
    }

    #[test]
    fn a_line_without_a_directive_is_left_alone() {
        let src = "fn a() {} // plain comment\n";
        let (out, removed) = remove_directives(src, &[1]);
        assert_eq!(out, src);
        assert!(removed.is_empty());
    }

    #[test]
    fn no_trailing_newline_is_preserved() {
        let src = "fn a() {} // pgmr-lint: allow(float-eq): stale";
        let (out, removed) = remove_directives(src, &[1]);
        assert_eq!(out, "fn a() {}");
        assert_eq!(removed.len(), 1);
    }
}
