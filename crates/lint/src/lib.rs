//! `pgmr-lint` — the workspace invariant checker.
//!
//! PolygraphMR's headline numbers (false-positive detection rates, RADE
//! exit statistics, byte-identical deterministic snapshots across seeded
//! runs) rest on invariants no type checker enforces: no exact float
//! comparisons, no wall-clock reads outside the observability layer, no
//! threads outside the shared pool, no panics without diagnostics in
//! library code, no unordered iteration feeding an export, no atomic
//! operation with its `Ordering` hidden behind a variable. This crate
//! checks all of them mechanically: a hand-rolled comment/string/
//! lifetime-aware lexer ([`lexer`]), six lexical rules ([`rules`]), an
//! inline-suppression layer with mandatory reasons ([`allow`]), and a
//! CLI (`cargo run -p pgmr-lint -- --workspace --deny`) that walks every
//! workspace `.rs` file and emits `file:line:col` diagnostics plus a
//! machine-readable JSON report ([`diag`]).
//!
//! See `DESIGN.md` §4c for the rule table, the suppression syntax, and
//! how to add a rule.

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;

pub use diag::{Diagnostic, LintReport};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints one file's source under a given workspace-relative path (the
/// path drives the path-scoped rules, so tests can lint fixture text
/// under any virtual location).
pub fn lint_source(relpath: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let ctx = rules::FileContext::new(relpath, &lexed);
    let mut diags = rules::run_all(&ctx);
    allow::apply(relpath, &lexed, &mut diags);
    diags
}

/// Directory names never descended into: build output, VCS metadata,
/// the offline dependency stand-ins under `compat/` (they mirror
/// external crates' APIs, not workspace invariants), and lint fixtures
/// (which exist to violate the rules on purpose).
const SKIP_DIRS: &[&str] = &["target", "compat", "fixtures"];

/// Every workspace `.rs` file under `root`, sorted, with skip dirs
/// ([`SKIP_DIRS`] and dot-dirs) pruned.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !name.starts_with('.') && !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        report.diagnostics.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the root the CLI lints by default.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_end_to_end() {
        let src = "pub fn f(x: f32) -> bool { x == 0.0 }\n";
        let diags = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "float-eq");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates").is_dir());
    }
}
