//! `pgmr-lint` — the workspace invariant checker.
//!
//! PolygraphMR's headline numbers (false-positive detection rates, RADE
//! exit statistics, byte-identical deterministic snapshots across seeded
//! runs, 0 steady-state allocations per image) rest on invariants no
//! type checker enforces. This crate checks them mechanically in two
//! layers:
//!
//! - **Lexical** (per file): a hand-rolled comment/string/lifetime-aware
//!   lexer ([`lexer`]) and six token-stream rules
//!   ([`rules::lexical`]) — float-eq, wall-clock, stray-spawn,
//!   panic-hygiene, unordered-iter, bare-atomic.
//! - **Semantic** (whole workspace): an item indexer ([`index`]), a
//!   cross-file name resolver ([`resolve`]), and a call graph with
//!   reachability queries ([`callgraph`]) feed three rules —
//!   `hot-path-alloc` (no allocating constructors reachable from the
//!   zero-alloc serving roots), `nested-pool-run` (no pool dispatch
//!   reachable from inside a pool job closure), and `lock-order`
//!   (consistent pairwise lock acquisition order across obs/pool/
//!   serve). Their findings carry witness call chains.
//!
//! Both layers share the inline-suppression machinery with mandatory
//! reasons ([`allow`]), and the CLI (`cargo run -p pgmr-lint --
//! --workspace --deny`) walks every workspace `.rs` file and emits
//! `file:line:col` diagnostics plus a machine-readable JSON report
//! ([`diag`]).
//!
//! See `DESIGN.md` §4c for the rule table, the suppression syntax, the
//! call-graph architecture, and how to add a rule.

pub mod allow;
pub mod callgraph;
pub mod diag;
pub mod fix;
pub mod index;
pub mod lexer;
pub mod resolve;
pub mod rules;

pub use diag::{Diagnostic, LintReport};

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::index::WorkspaceIndex;
use crate::resolve::Resolver;

/// Lints a set of sources as one workspace: lexical rules per file,
/// then the semantic rules over the joint index, then per-file
/// suppression. Paths are workspace-relative and drive the path-scoped
/// rules, so tests can lint fixture text under any virtual location.
pub fn lint_sources(files: &[(String, String)]) -> LintReport {
    let mut report = LintReport::default();
    // Phase 1: lex, classify, and parse directives per file.
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let ctxs: Vec<rules::FileContext<'_>> =
        files.iter().zip(&lexed).map(|((path, _), lx)| rules::FileContext::new(path, lx)).collect();
    let mut dirs: Vec<allow::FileDirectives> =
        files.iter().zip(&lexed).map(|((path, _), lx)| allow::collect(path, lx)).collect();
    // Phase 2: build the workspace index and call graph.
    let mut ix = WorkspaceIndex::default();
    for ((ctx, lx), d) in ctxs.iter().zip(&lexed).zip(&dirs) {
        let boundary_lines: Vec<(usize, String)> =
            d.boundaries.iter().map(|b| (b.target_line, b.rule.clone())).collect();
        ix.add_file(ctx.relpath, lx, ctx.test_file, &ctx.test_ranges, &boundary_lines);
    }
    let resolver = Resolver::new(&ix);
    let graph = CallGraph::build(&ix, &resolver);
    report.indexed_fns = ix.fns.len();
    report.indexed_calls = ix.total_calls();
    // Phase 3: run both rule layers.
    let mut raw: Vec<Diagnostic> = Vec::new();
    for ctx in &ctxs {
        raw.extend(rules::run_all(ctx));
    }
    rules::run_semantic(&ix, &graph, &resolver, &mut raw);
    // A boundary directive must precede an actual fn definition.
    for (file_ix, d) in dirs.iter().enumerate() {
        for b in &d.boundaries {
            let anchors_fn = ix.files[file_ix].fns.iter().any(|&f| ix.fns[f].line == b.target_line);
            if !anchors_fn {
                raw.push(Diagnostic::new(
                    files[file_ix].0.clone(),
                    b.line,
                    b.column,
                    "invalid-allow",
                    format!(
                        "boundary({}) does not precede a function definition (target line {})",
                        b.rule, b.target_line
                    ),
                ));
            }
        }
    }
    // Phase 4: apply suppressions per file, in input order.
    let by_file: HashMap<&str, usize> =
        files.iter().enumerate().map(|(i, (p, _))| (p.as_str(), i)).collect();
    let mut grouped: Vec<Vec<Diagnostic>> = vec![Vec::new(); files.len()];
    for d in raw {
        match by_file.get(d.file.as_str()) {
            Some(&i) => grouped[i].push(d),
            None => report.diagnostics.push(d),
        }
    }
    for (i, mut diags) in grouped.into_iter().enumerate() {
        let d = std::mem::take(&mut dirs[i]);
        allow::apply_directives(&files[i].0, d, &mut diags);
        report.diagnostics.append(&mut diags);
    }
    report.files_scanned = files.len();
    report.sort();
    report
}

/// Lints one file's source under a given workspace-relative path. The
/// semantic rules run over a single-file index — cross-file edges are
/// absent, which is exactly what fixture tests want.
pub fn lint_source(relpath: &str, source: &str) -> Vec<Diagnostic> {
    lint_sources(&[(relpath.to_string(), source.to_string())]).diagnostics
}

/// Directory names never descended into: build output, VCS metadata,
/// the offline dependency stand-ins under `compat/` (they mirror
/// external crates' APIs, not workspace invariants), and lint fixtures
/// (which exist to violate the rules on purpose).
const SKIP_DIRS: &[&str] = &["target", "compat", "fixtures"];

/// Every workspace `.rs` file under `root`, sorted, with skip dirs
/// ([`SKIP_DIRS`] and dot-dirs) pruned.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !name.starts_with('.') && !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Reads every workspace `.rs` file under `root` into `(relpath,
/// source)` pairs ready for [`lint_sources`].
pub fn read_workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for path in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path);
        out.push((rel.to_string_lossy().replace('\\', "/"), source));
    }
    Ok(out)
}

/// Lints every workspace `.rs` file under `root` as one workspace.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    Ok(lint_sources(&read_workspace_sources(root)?))
}

/// Builds just the semantic index for every workspace `.rs` file under
/// `root` — the raw material for reachability assertions in tests.
pub fn index_workspace(root: &Path) -> io::Result<WorkspaceIndex> {
    let files = read_workspace_sources(root)?;
    let mut ix = WorkspaceIndex::default();
    for (path, src) in &files {
        let lexed = lexer::lex(src);
        let ctx = rules::FileContext::new(path, &lexed);
        let dirs = allow::collect(path, &lexed);
        let boundary_lines: Vec<(usize, String)> =
            dirs.boundaries.iter().map(|b| (b.target_line, b.rule.clone())).collect();
        ix.add_file(path, &lexed, ctx.test_file, &ctx.test_ranges, &boundary_lines);
    }
    Ok(ix)
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the root the CLI lints by default.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_end_to_end() {
        let src = "pub fn f(x: f32) -> bool { x == 0.0 }\n";
        let diags = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "float-eq");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn lint_sources_sees_cross_file_reachability() {
        let files = vec![
            (
                "crates/nn/src/network.rs".to_string(),
                "impl Network { pub fn forward_into_logits(&mut self) { crate::util::helper(); } }\n"
                    .to_string(),
            ),
            (
                "crates/nn/src/util.rs".to_string(),
                "pub fn helper() { let v: Vec<u8> = Vec::new(); }\n".to_string(),
            ),
        ];
        let report = lint_sources(&files);
        assert_eq!(report.files_scanned, 2);
        assert!(report.indexed_fns >= 2);
        let hot: Vec<_> =
            report.diagnostics.iter().filter(|d| d.rule == "hot-path-alloc").collect();
        assert_eq!(hot.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(hot[0].file, "crates/nn/src/util.rs");
        assert_eq!(hot[0].witness.len(), 2);
    }

    #[test]
    fn boundary_without_fn_definition_is_reported() {
        let src = "// pgmr-lint: boundary(hot-path-alloc): misplaced\nstruct S;\n";
        let diags = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "invalid-allow");
        assert!(diags[0].message.contains("does not precede a function definition"));
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates").is_dir());
    }
}
