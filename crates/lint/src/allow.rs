//! Inline suppressions: `pgmr-lint: allow(rule-id): <reason>` line
//! comments, with a mandatory reason and unused-allow detection.
//!
//! A directive suppresses diagnostics of exactly one rule on its target
//! line — the comment's own line when it trails code, otherwise the next
//! line that carries code. A directive that suppresses nothing is itself
//! reported (`unused-allow`), as is a malformed one (`invalid-allow`):
//! unknown rule id, missing reason, or unparseable syntax. The meta
//! rules cannot be suppressed.

use crate::diag::Diagnostic;
use crate::lexer::Lexed;
use crate::rules::RULE_IDS;

/// One parsed, well-formed suppression directive.
#[derive(Debug)]
struct Allow {
    rule: String,
    line: usize,
    column: usize,
    target_line: usize,
    used: bool,
}

/// The directive marker inside a line comment (after stripping doc
/// slashes and leading whitespace).
const MARKER: &str = "pgmr-lint:";

/// Applies every suppression directive in `lexed` to `diags`, removing
/// suppressed findings and appending `unused-allow` / `invalid-allow`
/// findings for directives that miss or fail to parse.
pub fn apply(relpath: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    let mut allows: Vec<Allow> = Vec::new();
    for comment in &lexed.comments {
        // Doc comments arrive as `/ …` or `! …`; strip to the payload.
        let payload = comment.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = payload.strip_prefix(MARKER) else { continue };
        let column = 1 + comment.text.len() - comment.text.trim_start().len();
        match parse_directive(rest.trim_start()) {
            Ok(rule) => allows.push(Allow {
                rule,
                line: comment.line,
                column,
                target_line: target_line(lexed, comment.line),
                used: false,
            }),
            Err(why) => diags.push(Diagnostic {
                file: relpath.to_string(),
                line: comment.line,
                column,
                rule: "invalid-allow",
                message: why,
            }),
        }
    }
    diags.retain(|d| {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.rule == d.rule && a.target_line == d.line)
            .map(|a| a.used = true)
            .is_some();
        !suppressed
    });
    for a in allows {
        if !a.used {
            diags.push(Diagnostic {
                file: relpath.to_string(),
                line: a.line,
                column: a.column,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing on line {} — remove it or fix the target",
                    a.rule, a.target_line
                ),
            });
        }
    }
}

/// Parses `allow(rule-id): reason` (the part after the marker).
fn parse_directive(rest: &str) -> Result<String, String> {
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(rule-id): <reason>` after the pgmr-lint marker".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` — expected `allow(rule-id): <reason>`".to_string());
    };
    let rule = rest[..close].trim();
    if !RULE_IDS.contains(&rule) {
        return Err(format!(
            "unknown rule `{rule}` — suppressible rules are: {}",
            RULE_IDS.join(", ")
        ));
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "allow({rule}) requires a reason: `allow({rule}): <why this is sound>`"
        ));
    }
    Ok(rule.to_string())
}

/// The line a directive on `comment_line` governs: its own line when
/// code precedes the comment there, else the next line carrying code.
fn target_line(lexed: &Lexed, comment_line: usize) -> usize {
    if lexed.tokens.iter().any(|t| t.line == comment_line) {
        return comment_line;
    }
    lexed.tokens.iter().map(|t| t.line).filter(|&l| l > comment_line).min().unwrap_or(comment_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{run_all, FileContext};

    fn lint(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let ctx = FileContext::new("crates/x/src/lib.rs", &lexed);
        let mut diags = run_all(&ctx);
        apply("crates/x/src/lib.rs", &lexed, &mut diags);
        diags
    }

    #[test]
    fn allow_above_suppresses_next_code_line() {
        let src = "pub fn f(x: f32) -> bool {\n    // pgmr-lint: allow(float-eq): exact sentinel value\n    x == 1.0\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src =
            "pub fn f(x: f32) -> bool { x == 1.0 } // pgmr-lint: allow(float-eq): exact sentinel\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_invalid() {
        let src = "// pgmr-lint: allow(float-eq)\npub fn f(x: f32) -> bool { x == 1.0 }\n";
        let diags = lint(src);
        assert_eq!(diags.len(), 2, "violation stays, directive reported: {diags:?}");
        assert!(diags.iter().any(|d| d.rule == "invalid-allow"));
        assert!(diags.iter().any(|d| d.rule == "float-eq"));
    }

    #[test]
    fn unknown_rule_is_invalid() {
        let diags = lint("// pgmr-lint: allow(no-such-rule): because\npub fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "invalid-allow");
    }

    #[test]
    fn unused_allow_is_reported() {
        let diags = lint("// pgmr-lint: allow(float-eq): stale reason\npub fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-allow");
    }

    #[test]
    fn allow_only_covers_its_rule() {
        let src = "pub fn f(x: f32) -> bool {\n    // pgmr-lint: allow(wall-clock): wrong rule\n    x == 1.0\n}\n";
        let diags = lint(src);
        assert!(diags.iter().any(|d| d.rule == "float-eq"));
        assert!(diags.iter().any(|d| d.rule == "unused-allow"));
    }
}
