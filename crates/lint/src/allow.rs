//! Inline directives: `pgmr-lint: allow(rule-id): <reason>` line
//! comments (suppression with a mandatory reason plus unused-allow
//! detection), and `pgmr-lint: boundary(rule-id): <reason>` (place the
//! next function definition past the named call-graph rule's frontier:
//! the rule neither reports inside it nor traverses through it — for
//! documented allocating tiers like the reference oracles).
//!
//! A directive targets exactly one line — the comment's own line when
//! it trails code, otherwise the next line that carries code. An allow
//! suppresses diagnostics of exactly one rule on its target line; one
//! that suppresses nothing is itself reported (`unused-allow`), as is a
//! malformed directive (`invalid-allow`): unknown rule id, missing
//! reason, unparseable syntax, or a boundary naming a rule that does
//! no traversal. The meta rules cannot be suppressed. A boundary whose
//! target line is not a `fn` definition is reported by the engine in
//! [`crate::lint_sources`].

use crate::diag::Diagnostic;
use crate::lexer::Lexed;
use crate::rules::{BOUNDARY_RULES, RULE_IDS};

/// One parsed, well-formed suppression directive.
#[derive(Debug)]
struct Allow {
    rule: String,
    line: usize,
    column: usize,
    target_line: usize,
    used: bool,
}

/// One parsed, well-formed boundary directive: the call-graph rule
/// `rule` must not traverse past the function defined on `target_line`.
#[derive(Debug)]
pub struct Boundary {
    pub rule: String,
    pub line: usize,
    pub column: usize,
    pub target_line: usize,
}

/// Every directive found in one file.
#[derive(Debug, Default)]
pub struct FileDirectives {
    allows: Vec<Allow>,
    pub boundaries: Vec<Boundary>,
    invalid: Vec<Diagnostic>,
}

/// The directive marker inside a line comment (after stripping doc
/// slashes and leading whitespace).
pub const MARKER: &str = "pgmr-lint:";

/// Parses every `pgmr-lint:` directive in `lexed`.
pub fn collect(relpath: &str, lexed: &Lexed) -> FileDirectives {
    let mut dirs = FileDirectives::default();
    for comment in &lexed.comments {
        // Doc comments arrive as `/ …` or `! …`; strip to the payload.
        let payload = comment.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = payload.strip_prefix(MARKER) else { continue };
        let column = 1 + comment.text.len() - comment.text.trim_start().len();
        match parse_directive(rest.trim_start()) {
            Ok(Directive::Allow(rule)) => dirs.allows.push(Allow {
                rule,
                line: comment.line,
                column,
                target_line: target_line(lexed, comment.line),
                used: false,
            }),
            Ok(Directive::Boundary(rule)) => dirs.boundaries.push(Boundary {
                rule,
                line: comment.line,
                column,
                target_line: target_line(lexed, comment.line),
            }),
            Err(why) => dirs.invalid.push(Diagnostic::new(
                relpath.to_string(),
                comment.line,
                column,
                "invalid-allow",
                why,
            )),
        }
    }
    dirs
}

/// Applies the collected allows to `diags`, removing suppressed
/// findings and appending `unused-allow` / `invalid-allow` findings.
pub fn apply_directives(relpath: &str, mut dirs: FileDirectives, diags: &mut Vec<Diagnostic>) {
    diags.append(&mut dirs.invalid);
    diags.retain(|d| {
        let suppressed = dirs
            .allows
            .iter_mut()
            .find(|a| a.rule == d.rule && a.target_line == d.line)
            .map(|a| a.used = true)
            .is_some();
        !suppressed
    });
    for a in dirs.allows {
        if !a.used {
            diags.push(Diagnostic::new(
                relpath.to_string(),
                a.line,
                a.column,
                "unused-allow",
                format!(
                    "allow({}) suppresses nothing on line {} — remove it or fix the target",
                    a.rule, a.target_line
                ),
            ));
        }
    }
}

/// Single-file convenience: collect and apply in one step. Boundary
/// directives are validated only in whole-workspace runs.
pub fn apply(relpath: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    apply_directives(relpath, collect(relpath, lexed), diags);
}

enum Directive {
    Allow(String),
    Boundary(String),
}

/// Parses `allow(rule-id): reason` or `boundary(rule-id): reason` (the
/// part after the marker).
fn parse_directive(rest: &str) -> Result<Directive, String> {
    let (kind, rest) = if let Some(r) = rest.strip_prefix("allow(") {
        ("allow", r)
    } else if let Some(r) = rest.strip_prefix("boundary(") {
        ("boundary", r)
    } else {
        return Err(
            "expected `allow(rule-id): <reason>` or `boundary(rule-id): <reason>` after the pgmr-lint marker"
                .to_string(),
        );
    };
    let Some(close) = rest.find(')') else {
        return Err(format!("unclosed `{kind}(` — expected `{kind}(rule-id): <reason>`"));
    };
    let rule = rest[..close].trim();
    if kind == "allow" && !RULE_IDS.contains(&rule) {
        return Err(format!(
            "unknown rule `{rule}` — suppressible rules are: {}",
            RULE_IDS.join(", ")
        ));
    }
    if kind == "boundary" && !BOUNDARY_RULES.contains(&rule) {
        return Err(format!(
            "boundary({rule}) — only call-graph rules take boundaries: {}",
            BOUNDARY_RULES.join(", ")
        ));
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "{kind}({rule}) requires a reason: `{kind}({rule}): <why this is sound>`"
        ));
    }
    Ok(if kind == "allow" {
        Directive::Allow(rule.to_string())
    } else {
        Directive::Boundary(rule.to_string())
    })
}

/// The line a directive on `comment_line` governs: its own line when
/// code precedes the comment there, else the next line carrying code.
fn target_line(lexed: &Lexed, comment_line: usize) -> usize {
    if lexed.tokens.iter().any(|t| t.line == comment_line) {
        return comment_line;
    }
    lexed.tokens.iter().map(|t| t.line).filter(|&l| l > comment_line).min().unwrap_or(comment_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{run_all, FileContext};

    fn lint(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let ctx = FileContext::new("crates/x/src/lib.rs", &lexed);
        let mut diags = run_all(&ctx);
        apply("crates/x/src/lib.rs", &lexed, &mut diags);
        diags
    }

    #[test]
    fn allow_above_suppresses_next_code_line() {
        let src = "pub fn f(x: f32) -> bool {\n    // pgmr-lint: allow(float-eq): exact sentinel value\n    x == 1.0\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let src =
            "pub fn f(x: f32) -> bool { x == 1.0 } // pgmr-lint: allow(float-eq): exact sentinel\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_invalid() {
        let src = "// pgmr-lint: allow(float-eq)\npub fn f(x: f32) -> bool { x == 1.0 }\n";
        let diags = lint(src);
        assert_eq!(diags.len(), 2, "violation stays, directive reported: {diags:?}");
        assert!(diags.iter().any(|d| d.rule == "invalid-allow"));
        assert!(diags.iter().any(|d| d.rule == "float-eq"));
    }

    #[test]
    fn unknown_rule_is_invalid() {
        let diags = lint("// pgmr-lint: allow(no-such-rule): because\npub fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "invalid-allow");
    }

    #[test]
    fn unused_allow_is_reported() {
        let diags = lint("// pgmr-lint: allow(float-eq): stale reason\npub fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-allow");
    }

    #[test]
    fn allow_only_covers_its_rule() {
        let src = "pub fn f(x: f32) -> bool {\n    // pgmr-lint: allow(wall-clock): wrong rule\n    x == 1.0\n}\n";
        let diags = lint(src);
        assert!(diags.iter().any(|d| d.rule == "float-eq"));
        assert!(diags.iter().any(|d| d.rule == "unused-allow"));
    }

    #[test]
    fn semantic_rule_ids_are_suppressible() {
        for rule in ["hot-path-alloc", "nested-pool-run", "lock-order"] {
            let src = format!("// pgmr-lint: allow({rule}): placed for test\npub fn f() {{}}\n");
            let diags = lint(&src);
            assert_eq!(diags.len(), 1, "{rule}: {diags:?}");
            assert_eq!(diags[0].rule, "unused-allow", "{rule} must parse as a known rule");
        }
    }

    #[test]
    fn boundary_parses_and_targets_next_fn_line() {
        let src =
            "// pgmr-lint: boundary(hot-path-alloc): allocating reference oracle\nfn shim() {}\n";
        let dirs = collect("crates/x/src/lib.rs", &lex(src));
        assert_eq!(dirs.boundaries.len(), 1);
        assert_eq!(dirs.boundaries[0].rule, "hot-path-alloc");
        assert_eq!(dirs.boundaries[0].target_line, 2);
    }

    #[test]
    fn boundary_requires_traversal_rule_and_reason() {
        let bad_rule = "// pgmr-lint: boundary(float-eq): nope\nfn f() {}\n";
        let diags = lint(bad_rule);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "invalid-allow");
        let no_reason = "// pgmr-lint: boundary(hot-path-alloc)\nfn f() {}\n";
        let diags = lint(no_reason);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "invalid-allow");
    }
}
