//! `lock-order`: inconsistent pairwise lock acquisition orderings
//! across the three lock-holding subsystems (`crates/obs`,
//! `pgmr_nn::pool`, `crates/serve`). Two functions that take the same
//! two locks in opposite orders can deadlock under concurrency; one
//! global order per lock pair is the invariant.
//!
//! Model (documented approximations, all erring toward reporting):
//! - A lock's *identity* is the final receiver segment at the
//!   acquisition site (`self.shared.stats.lock()` → `stats`); two
//!   locks sharing a field name alias into one identity.
//! - A `let`-bound guard is modeled as held from its acquisition to
//!   the end of the function — early drops and block scopes are
//!   invisible, erring toward reporting. A *statement-temporary*
//!   acquisition (`self.results.lock().…;` with no `let`) dies at its
//!   semicolon, so it never enters the held set — but it can still be
//!   the second half of a pair recorded against guards already held.
//! - Held sets propagate through the call graph: calling a function
//!   whose transitive closure acquires lock `b` while holding `a`
//!   records the pair `a → b`, with the call chain as witness.
//!   Closure bodies count as if they ran at the call site (deferred
//!   jobs are over-approximated as inline).
//!
//! Only acquisitions in the scoped subsystems count, and test code is
//! skipped. A diagnostic anchors at the second acquisition of the
//! lexicographically smaller ordering and names the conflicting site.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::index::{FnId, WorkspaceIndex};
use crate::resolve::Resolver;

pub const RULE: &str = "lock-order";

/// Path prefixes of the lock-holding subsystems this rule polices.
const SCOPE: &[&str] = &["crates/obs/", "crates/serve/", "crates/nn/src/pool.rs"];

fn in_scope(relpath: &str) -> bool {
    SCOPE.iter().any(|p| relpath.starts_with(p))
}

/// One recorded ordered acquisition `a` then `b`.
struct Occurrence {
    f: FnId,
    a: String,
    a_line: usize,
    b_line: usize,
    b_col: usize,
    /// Call chain from the callee at the recording site to the
    /// function that actually acquires `b`; empty for a direct
    /// acquisition in `f`.
    via: Vec<FnId>,
}

pub fn run(ix: &WorkspaceIndex, graph: &CallGraph, resolver: &Resolver, out: &mut Vec<Diagnostic>) {
    let n = ix.fns.len();
    let scoped: Vec<bool> = (0..n)
        .map(|id| {
            let f = &ix.fns[id];
            !f.in_test && in_scope(&ix.files[f.file].relpath)
        })
        .collect();
    // Direct acquisitions per function (scoped only), then the
    // transitive closure over call edges.
    let own: Vec<BTreeSet<String>> = (0..n)
        .map(|id| {
            if scoped[id] {
                ix.fns[id].locks.iter().map(|l| l.name.clone()).collect()
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    let mut trans = own.clone();
    loop {
        let mut changed = false;
        for f in 0..n {
            for g in graph.edges[f].clone() {
                if trans[g].is_empty() || f == g {
                    continue;
                }
                let add: Vec<String> =
                    trans[g].iter().filter(|t| !trans[f].contains(*t)).cloned().collect();
                if !add.is_empty() {
                    changed = true;
                    trans[f].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Record the first occurrence of every ordered pair.
    let mut pairs: BTreeMap<(String, String), Occurrence> = BTreeMap::new();
    for f in (0..n).filter(|&f| scoped[f]) {
        let fun = &ix.fns[f];
        // Body events in source order: acquisitions and calls.
        enum Ev<'a> {
            Lock(&'a crate::index::LockSite),
            Call(&'a crate::index::CallSite),
        }
        let mut evs: Vec<(usize, usize, Ev<'_>)> = Vec::new();
        evs.extend(fun.locks.iter().map(|l| (l.line, l.col, Ev::Lock(l))));
        evs.extend(fun.calls.iter().map(|c| (c.line, c.col, Ev::Call(c))));
        evs.sort_by_key(|&(line, col, _)| (line, col));
        let mut held: Vec<&crate::index::LockSite> = Vec::new();
        for (_, _, ev) in evs {
            match ev {
                Ev::Lock(l) => {
                    for h in &held {
                        if h.name != l.name {
                            pairs.entry((h.name.clone(), l.name.clone())).or_insert(Occurrence {
                                f,
                                a: h.name.clone(),
                                a_line: h.line,
                                b_line: l.line,
                                b_col: l.col,
                                via: Vec::new(),
                            });
                        }
                    }
                    if l.let_bound {
                        held.push(l);
                    }
                }
                Ev::Call(c) => {
                    if held.is_empty() {
                        continue;
                    }
                    for callee in resolver.resolve(ix, f, c) {
                        if callee == f {
                            continue;
                        }
                        for t in &trans[callee] {
                            for h in &held {
                                if &h.name == t {
                                    continue;
                                }
                                pairs.entry((h.name.clone(), t.clone())).or_insert_with(|| {
                                    Occurrence {
                                        f,
                                        a: h.name.clone(),
                                        a_line: h.line,
                                        b_line: c.line,
                                        b_col: c.col,
                                        via: chain_to_lock(graph, &own, callee, t),
                                    }
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    // Inversions: both (a, b) and (b, a) recorded.
    for ((a, b), occ) in &pairs {
        if a >= b {
            continue;
        }
        let Some(other) = pairs.get(&(b.clone(), a.clone())) else { continue };
        let file = ix.files[ix.fns[occ.f].file].relpath.clone();
        let other_file = &ix.files[ix.fns[other.f].file].relpath;
        let mut d = Diagnostic::new(
            file,
            occ.b_line,
            occ.b_col,
            RULE,
            format!(
                "inconsistent lock order: `{a}` → `{b}` here, but `{b}` → `{a}` in `{}` ({other_file}:{}) — pick one global order for this pair",
                ix.qualified_name(other.f),
                other.b_line,
            ),
        );
        d.witness = vec![render_side(ix, occ, b), render_side(ix, other, a)];
        out.push(d);
    }
}

/// BFS from `start` to the nearest function that directly acquires
/// `lock`, returning the chain `start → … → locker`.
fn chain_to_lock(
    graph: &CallGraph,
    own: &[BTreeSet<String>],
    start: FnId,
    lock: &str,
) -> Vec<FnId> {
    let mut parent: Vec<Option<FnId>> = vec![None; graph.edges.len()];
    let mut seen = vec![false; graph.edges.len()];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(f) = queue.pop_front() {
        if own[f].contains(lock) {
            let mut chain = vec![f];
            let mut cur = f;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return chain;
        }
        for &g in &graph.edges[f] {
            if !seen[g] {
                seen[g] = true;
                parent[g] = Some(f);
                queue.push_back(g);
            }
        }
    }
    Vec::new()
}

fn render_side(ix: &WorkspaceIndex, occ: &Occurrence, second: &str) -> String {
    if occ.via.is_empty() {
        format!(
            "{} acquires `{}` (line {}) then `{second}` (line {})",
            ix.describe(occ.f),
            occ.a,
            occ.a_line,
            occ.b_line
        )
    } else {
        let chain: Vec<String> = occ.via.iter().map(|&f| ix.qualified_name(f)).collect();
        format!(
            "{} acquires `{}` (line {}) then reaches `{second}` via {} (call at line {})",
            ix.describe(occ.f),
            occ.a,
            occ.a_line,
            chain.join(" → "),
            occ.b_line
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut ix = WorkspaceIndex::default();
        for (path, src) in files {
            ix.add_file(path, &lex(src), false, &[], &[]);
        }
        let resolver = Resolver::new(&ix);
        let graph = CallGraph::build(&ix, &resolver);
        let mut out = Vec::new();
        run(&ix, &graph, &resolver, &mut out);
        out
    }

    #[test]
    fn intra_fn_inversion_fires_once() {
        let diags = run_on(&[(
            "crates/obs/src/registry.rs",
            "impl R {\n\
             fn ab(&self) { let a = self.alpha.lock().expect(\"a\"); \
             let b = self.beta.lock().expect(\"b\"); }\n\
             fn ba(&self) { let b = self.beta.lock().expect(\"b\"); \
             let a = self.alpha.lock().expect(\"a\"); }\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE);
        assert!(diags[0].message.contains("`alpha` → `beta`"));
        assert_eq!(diags[0].witness.len(), 2);
    }

    #[test]
    fn cross_fn_inversion_via_call_chain_carries_witness() {
        let diags = run_on(&[(
            "crates/serve/src/lib.rs",
            "impl E {\n\
             fn ab(&self) { let a = self.alpha.lock().expect(\"a\"); self.take_beta(); }\n\
             fn take_beta(&self) { let b = self.beta.lock().expect(\"b\"); }\n\
             fn ba(&self) { let b = self.beta.lock().expect(\"b\"); \
             let a = self.alpha.lock().expect(\"a\"); }\n}\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].witness[0].contains("take_beta"), "{:?}", diags[0].witness);
    }

    #[test]
    fn statement_temporary_guard_does_not_enter_held_set() {
        // The worker thread writes through a temporary guard
        // (`results.lock()…;` — no `let`, guard dies at the `;`), then
        // let-binds `remaining`. The main path let-binds `remaining`
        // then temporarily takes `results`. Neither side ever *holds*
        // one while acquiring the other in the inverted order, so no
        // inversion exists.
        let diags = run_on(&[(
            "crates/nn/src/pool.rs",
            "impl W {\n\
             fn worker(&self) { self.results.lock().expect(\"r\").push(1); \
             let mut left = self.remaining.lock().expect(\"n\"); *left -= 1; }\n\
             fn main(&self) { let left = self.remaining.lock().expect(\"n\"); drop(left); \
             self.results.lock().expect(\"r\").clear(); }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn consistent_order_is_clean_and_out_of_scope_paths_are_ignored() {
        let consistent = "impl R {\n\
             fn one(&self) { let a = self.alpha.lock().expect(\"a\"); \
             let b = self.beta.lock().expect(\"b\"); }\n\
             fn two(&self) { let a = self.alpha.lock().expect(\"a\"); \
             let b = self.beta.lock().expect(\"b\"); }\n}\n";
        assert!(run_on(&[("crates/obs/src/registry.rs", consistent)]).is_empty());
        let inverted = "impl R {\n\
             fn ab(&self) { let a = self.alpha.lock().expect(\"a\"); \
             let b = self.beta.lock().expect(\"b\"); }\n\
             fn ba(&self) { let b = self.beta.lock().expect(\"b\"); \
             let a = self.alpha.lock().expect(\"a\"); }\n}\n";
        assert!(
            run_on(&[("crates/core/src/system.rs", inverted)]).is_empty(),
            "core is outside the lock-order scope"
        );
    }
}
