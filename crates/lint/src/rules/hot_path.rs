//! `hot-path-alloc`: the PR 5 invariant — **0 steady-state allocations
//! per image** — as a workspace-wide static gate instead of one bench.
//!
//! Any function reachable (over the call graph) from the zero-alloc
//! roots must not call an allocating constructor (`Vec::new`, `vec!`,
//! `.to_vec()`, `.collect()`, `Box::new`, `String::from`, `format!`)
//! outside the workspace-arena APIs. The roots are the serving-path
//! entries: `Network::forward_into_logits`, the `Layer::forward_into`
//! family, `decide_request`, and the serve batcher fold
//! (`BatchEngine::process`).
//!
//! The rule's world has a *frontier* past which it neither traverses
//! nor reports:
//! - the reference-oracle methods (`forward`, `forward_with_checksum`,
//!   `backward`, and any `*_reference` shim) — the allocating
//!   train/verify tier the zero-alloc kernels are checked against; the
//!   only serving edges into them are flow-insensitive `train`
//!   fallbacks;
//! - the arena file itself ([`EXEMPT_FILES`]) — where the hot path's
//!   memory legitimately comes from;
//! - any function annotated `pgmr-lint: boundary(hot-path-alloc):
//!   reason` — a *documented* allocating tier (e.g. `Member::predict`
//!   returning its per-request probability vector).
//!
//! Individual intentional allocations inside the rule's world instead
//! take `pgmr-lint: allow(hot-path-alloc): reason` on the site.

use crate::callgraph::{CallGraph, Reach};
use crate::diag::Diagnostic;
use crate::index::{FnId, WorkspaceIndex};

pub const RULE: &str = "hot-path-alloc";

/// Root functions by name; a `Some` owner restricts to that impl type.
const ROOT_FNS: &[(&str, Option<&str>)] = &[
    ("forward_into_logits", None),
    ("forward_into", None),
    ("forward_into_with_checksum", None),
    ("decide_request", None),
    ("process", Some("BatchEngine")),
];

/// Files whose allocations are the arena implementation itself.
const EXEMPT_FILES: &[&str] = &["crates/nn/src/workspace.rs"];

/// The allocating reference tier: training/verification oracles the
/// zero-alloc kernels are checked against for bit-identity. Methods by
/// these names (and `*_reference` shims) sit past the rule's frontier.
const REFERENCE_FNS: &[&str] = &["forward", "forward_with_checksum", "backward"];

fn is_frontier(ix: &WorkspaceIndex, id: FnId) -> bool {
    let f = &ix.fns[id];
    f.boundaries.iter().any(|b| b == RULE)
        || (f.has_self && REFERENCE_FNS.contains(&f.name.as_str()))
        || f.name.ends_with("_reference")
        || EXEMPT_FILES.contains(&ix.files[f.file].relpath.as_str())
}

/// The zero-alloc roots present in `ix` (non-test definitions only).
pub fn roots(ix: &WorkspaceIndex) -> Vec<FnId> {
    (0..ix.fns.len())
        .filter(|&id| {
            let f = &ix.fns[id];
            !f.in_test
                && ROOT_FNS.iter().any(|(name, owner)| {
                    f.name == *name && owner.is_none_or(|o| f.self_type.as_deref() == Some(o))
                })
        })
        .collect()
}

pub fn run(ix: &WorkspaceIndex, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let roots = roots(ix);
    if roots.is_empty() {
        return;
    }
    let reach = Reach::compute(graph, &roots, |f| is_frontier(ix, f));
    for id in 0..ix.fns.len() {
        if !reach.seen[id] || ix.fns[id].in_test || is_frontier(ix, id) {
            continue;
        }
        let file = &ix.files[ix.fns[id].file];
        let chain = reach.chain(id);
        let root_name = ix.qualified_name(chain[0]);
        for alloc in &ix.fns[id].allocs {
            let mut d = Diagnostic::new(
                file.relpath.clone(),
                alloc.line,
                alloc.col,
                RULE,
                format!(
                    "`{}` allocates on the zero-alloc hot path (reachable from `{root_name}`) — use the workspace arena, hoist the allocation off the serving path, or annotate why it is intentional",
                    alloc.what
                ),
            );
            d.witness = reach.witness(ix, id);
            out.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::resolve::Resolver;

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut ix = WorkspaceIndex::default();
        for (path, src) in files {
            ix.add_file(path, &lex(src), false, &[], &[]);
        }
        let resolver = Resolver::new(&ix);
        let graph = CallGraph::build(&ix, &resolver);
        let mut out = Vec::new();
        run(&ix, &graph, &mut out);
        out
    }

    #[test]
    fn allocation_reachable_from_root_fires_with_witness() {
        let diags = run_on(&[(
            "crates/nn/src/network.rs",
            "impl Network { pub fn forward_into_logits(&mut self) { helper(); } }\n\
             fn helper() { let v: Vec<u32> = (0..3).collect(); }\n\
             fn cold() { let v: Vec<u32> = Vec::new(); }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE);
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[0].witness.len(), 2);
        assert!(diags[0].witness[0].starts_with("pgmr_nn::network::Network::forward_into_logits"));
    }

    #[test]
    fn arena_file_is_exempt() {
        let diags = run_on(&[
            (
                "crates/nn/src/network.rs",
                "impl Network { pub fn forward_into_logits(&mut self) { \
                 crate::workspace::acquire(); } }\n",
            ),
            ("crates/nn/src/workspace.rs", "pub fn acquire() { let v: Vec<u8> = Vec::new(); }\n"),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn boundary_stops_traversal_into_reference_shims() {
        let src = "impl Network { pub fn forward_into_logits(&mut self) { self.shim(); } }\n\
                   impl Network {\n\
                   // pgmr-lint: boundary(hot-path-alloc): allocating reference oracle\n\
                   fn shim(&self) { self.deep(); }\n\
                   fn deep(&self) { let v = vec![1]; }\n}\n";
        let lexed = lex(src);
        let dirs = crate::allow::collect("crates/nn/src/network.rs", &lexed);
        let mut ix = WorkspaceIndex::default();
        let blines: Vec<(usize, String)> =
            dirs.boundaries.iter().map(|b| (b.target_line, b.rule.clone())).collect();
        ix.add_file("crates/nn/src/network.rs", &lexed, false, &[], &blines);
        let resolver = Resolver::new(&ix);
        let graph = CallGraph::build(&ix, &resolver);
        let mut out = Vec::new();
        run(&ix, &graph, &mut out);
        assert!(out.is_empty(), "boundary must stop descent: {out:?}");
    }

    #[test]
    fn reference_oracles_sit_past_the_frontier() {
        // The trait-default forward_into falls back to the allocating
        // `forward` oracle; the rule must not chase it.
        let diags = run_on(&[(
            "crates/nn/src/layer.rs",
            "trait Layer {\n\
             fn forward(&mut self) -> Tensor { let v = vec![0.0]; Tensor::of(v) }\n\
             fn forward_into(&mut self) { self.forward(); }\n}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
