//! The rule engine: per-file context (path classification plus
//! `#[cfg(test)]` region tracking), the six lexical invariant rules
//! ([`lexical`]), and the three semantic rules that run over the
//! workspace call graph ([`hot_path`], [`nested_pool`], [`lock_order`]).
//!
//! Lexical rules see one file's token stream; semantic rules see the
//! whole-workspace item index and call graph, and their findings carry
//! a *witness chain* — the call path proving reachability. Neither
//! layer type-checks, so each rule trades a documented sliver of
//! coverage for zero dependencies and sub-second whole-workspace runs;
//! the suppression machinery in [`crate::allow`] covers intentional
//! exceptions.

pub mod hot_path;
pub mod lexical;
pub mod lock_order;
pub mod nested_pool;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use crate::lexer::{Lexed, Token, TokenKind};
use crate::resolve::Resolver;

/// Rule ids suppressible via `pgmr-lint: allow(...)` directives, in
/// reporting order: the six lexical rules, then the three semantic
/// ones. The meta rules (`unused-allow`, `invalid-allow`) are
/// deliberately absent: suppressing the suppressor is a cycle.
pub const RULE_IDS: &[&str] = &[
    "float-eq",
    "wall-clock",
    "stray-spawn",
    "panic-hygiene",
    "unordered-iter",
    "bare-atomic",
    hot_path::RULE,
    nested_pool::RULE,
    lock_order::RULE,
];

/// Rules whose call-graph traversal can be stopped by a
/// `pgmr-lint: boundary(rule): reason` directive on a function.
pub const BOUNDARY_RULES: &[&str] = &[hot_path::RULE, nested_pool::RULE];

/// Everything a lexical rule may look at for one file.
pub struct FileContext<'a> {
    /// Workspace-relative path, forward slashes.
    pub relpath: &'a str,
    /// The lexed file.
    pub lexed: &'a Lexed,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` modules or
    /// `#[test]` functions.
    pub test_ranges: Vec<(usize, usize)>,
    /// True when the whole file is test/bench/example scaffolding.
    pub test_file: bool,
    /// True for binary targets (`src/bin/`, `main.rs`, `build.rs`).
    pub bin_file: bool,
}

impl<'a> FileContext<'a> {
    /// Builds the context, classifying the path and locating test regions.
    pub fn new(relpath: &'a str, lexed: &'a Lexed) -> Self {
        let p = relpath;
        let test_file = p.starts_with("tests/")
            || p.contains("/tests/")
            || p.starts_with("benches/")
            || p.contains("/benches/")
            || p.starts_with("examples/")
            || p.contains("/examples/");
        let bin_file = p.contains("/src/bin/")
            || p.ends_with("/main.rs")
            || p == "main.rs"
            || p.ends_with("build.rs");
        FileContext {
            relpath,
            lexed,
            test_ranges: test_line_ranges(&lexed.tokens),
            test_file,
            bin_file,
        }
    }

    /// True when `line` sits inside test code (a test file, a
    /// `#[cfg(test)]` module, or a `#[test]` function).
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_file || self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    pub(crate) fn tok(&self, i: usize) -> Option<&Token> {
        self.lexed.tokens.get(i)
    }

    pub(crate) fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
    }

    pub(crate) fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
    }
}

/// Finds the (inclusive) line ranges of `#[cfg(test)]` / `#[test]`
/// items: from the attribute, the next top-of-chain `{` opens the item
/// body, and brace matching closes it. A `#[cfg(not(test))]` does not
/// count, and an attribute followed by `;` (an out-of-line `mod`) has no
/// body to range over.
pub(crate) fn test_line_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_attr_start = tokens[i].kind == TokenKind::Punct
            && tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[");
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Collect the attribute's identifiers up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match (tokens[j].kind, tokens[j].text.as_str()) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => depth -= 1,
                (TokenKind::Ident, name) => idents.push(name),
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = (idents.first() == Some(&"cfg")
            && idents.contains(&"test")
            && !idents.contains(&"not"))
            || idents.as_slice() == ["test"];
        if !is_test_attr {
            i = j;
            continue;
        }
        // Walk to the item body's `{`, skipping further attributes and
        // the signature (parens/brackets/generics carry no braces here).
        let mut k = j;
        let mut open = None;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct && t.text == "{" {
                open = Some(k);
                break;
            }
            if t.kind == TokenKind::Punct && t.text == ";" {
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        let mut brace = 0usize;
        let mut close = open;
        for (idx, t) in tokens.iter().enumerate().skip(open) {
            if t.kind == TokenKind::Punct {
                if t.text == "{" {
                    brace += 1;
                } else if t.text == "}" {
                    brace -= 1;
                    if brace == 0 {
                        close = idx;
                        break;
                    }
                }
            }
        }
        ranges.push((tokens[i].line, tokens[close].line));
        i = close + 1;
    }
    ranges
}

/// Runs every lexical rule over `ctx`, returning raw (pre-suppression)
/// findings. (Kept under its historical name: before the semantic
/// layer existed, this *was* "all" the rules.)
pub fn run_all(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    lexical::run(ctx)
}

/// Runs the three semantic rules over the workspace index and call
/// graph, appending raw (pre-suppression) findings.
pub fn run_semantic(
    ix: &WorkspaceIndex,
    graph: &CallGraph,
    resolver: &Resolver,
    out: &mut Vec<Diagnostic>,
) {
    hot_path::run(ix, graph, out);
    nested_pool::run(ix, graph, resolver, out);
    lock_order::run(ix, graph, resolver, out);
}
