//! The six lexical invariant rules. Every rule here sees one file's
//! token stream, not types, so each trades a documented sliver of
//! coverage for zero dependencies; the limits are listed per rule.

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::rules::FileContext;

/// Runs every lexical rule over `ctx`, returning raw findings.
pub fn run(ctx: &FileContext<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    float_eq(ctx, &mut out);
    wall_clock(ctx, &mut out);
    stray_spawn(ctx, &mut out);
    panic_hygiene(ctx, &mut out);
    unordered_iter(ctx, &mut out);
    bare_atomic(ctx, &mut out);
    out
}

fn diag(ctx: &FileContext<'_>, t: &Token, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(ctx.relpath.to_string(), t.line, t.col, rule, message)
}

/// `float-eq`: `==`/`!=` with a float-typed operand. Lexical scope: an
/// operand is recognizably float when it is a float literal or an
/// `f32::`/`f64::` associated constant; float-typed *variables* compared
/// to each other are invisible to this rule.
fn float_eq(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let right_float = toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float)
            || ((ctx.is_ident(i + 1, "f32") || ctx.is_ident(i + 1, "f64"))
                && ctx.is_punct(i + 2, "::"));
        let left_float = i >= 1 && toks[i - 1].kind == TokenKind::Float
            || (i >= 3
                && toks[i - 1].kind == TokenKind::Ident
                && ctx.is_punct(i - 2, "::")
                && (ctx.is_ident(i - 3, "f32") || ctx.is_ident(i - 3, "f64")));
        if right_float || left_float {
            out.push(diag(
                ctx,
                t,
                "float-eq",
                format!(
                    "exact float comparison `{}` — compare against an epsilon or use integer counts",
                    t.text
                ),
            ));
        }
    }
}

/// `wall-clock`: `Instant::now`, `SystemTime`, or `UNIX_EPOCH` outside
/// `crates/obs`, `crates/bench`, and `crates/serve`. Timing belongs
/// behind `pgmr_obs` spans/histograms so seeded runs stay byte-identical
/// in deterministic exports; the serving front-end is exempt because
/// deadlines and admission windows are inherently wall-clock.
fn wall_clock(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.relpath.starts_with("crates/obs/")
        || ctx.relpath.starts_with("crates/bench/")
        || ctx.relpath.starts_with("crates/serve/")
    {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "Instant" => ctx.is_punct(i + 1, "::") && ctx.is_ident(i + 2, "now"),
            "SystemTime" | "UNIX_EPOCH" => true,
            _ => false,
        };
        if hit {
            out.push(diag(
                ctx,
                t,
                "wall-clock",
                format!(
                    "wall-clock read `{}` outside pgmr-obs/pgmr-bench/pgmr-serve — route timing through pgmr_obs spans or `Histogram::time`",
                    t.text
                ),
            ));
        }
    }
}

/// `stray-spawn`: `thread::spawn` (or any `.spawn(…)` call) outside the
/// sanctioned thread owners — `pgmr_nn::pool` (worker threads) and
/// `crates/serve` (the one batcher thread per front-end, joined on
/// shutdown with its panic re-raised). Threads spawned elsewhere dodge
/// the pool's panic capture, ordering and instrumentation guarantees.
fn stray_spawn(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.relpath == "crates/nn/src/pool.rs" || ctx.relpath.starts_with("crates/serve/src/") {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "spawn" {
            continue;
        }
        let path_spawn = i >= 2 && ctx.is_ident(i - 2, "thread") && ctx.is_punct(i - 1, "::");
        let method_spawn = i >= 1 && ctx.is_punct(i - 1, ".") && ctx.is_punct(i + 1, "(");
        if path_spawn || method_spawn {
            out.push(diag(
                ctx,
                t,
                "stray-spawn",
                "thread spawned outside pgmr_nn::pool / pgmr-serve — use the shared worker pool"
                    .to_string(),
            ));
        }
    }
}

/// `panic-hygiene`: `.unwrap()` or `.expect("")` in non-test library
/// code. Tests, benches, examples and binary entry points may panic
/// freely; libraries must either propagate errors or `expect` with a
/// message a 3am operator can act on.
fn panic_hygiene(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.test_file || ctx.bin_file {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || ctx.in_test_code(t.line)
            || i == 0
            || !ctx.is_punct(i - 1, ".")
        {
            continue;
        }
        match t.text.as_str() {
            "unwrap" if ctx.is_punct(i + 1, "(") && ctx.is_punct(i + 2, ")") => {
                out.push(diag(
                    ctx,
                    t,
                    "panic-hygiene",
                    "`unwrap()` in library code — `expect` with a diagnostic message or propagate the error"
                        .to_string(),
                ));
            }
            "expect"
                if ctx.is_punct(i + 1, "(")
                    && toks
                        .get(i + 2)
                        .is_some_and(|a| a.kind == TokenKind::Str && a.text.is_empty()) =>
            {
                out.push(diag(
                    ctx,
                    t,
                    "panic-hygiene",
                    "`expect(\"\")` carries no diagnostic message — say what invariant broke"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Path fragments that mark a file as an export/serialization surface
/// for the `unordered-iter` rule.
const EXPORT_PATH_MARKERS: &[&str] = &["snapshot", "export", "serialize", "json"];

/// `unordered-iter`: `HashMap`/`HashSet` anywhere in a snapshot/export/
/// serialization file. Iteration order of the std hash collections is
/// seeded per process, so any use on an export surface risks
/// nondeterministic bytes; `BTreeMap`/`BTreeSet` or pre-sorted vectors
/// keep snapshots byte-identical.
fn unordered_iter(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let lower = ctx.relpath.to_ascii_lowercase();
    if !EXPORT_PATH_MARKERS.iter().any(|m| lower.contains(m)) {
        return;
    }
    for t in &ctx.lexed.tokens {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(diag(
                ctx,
                t,
                "unordered-iter",
                format!(
                    "`{}` in an export path — unordered iteration breaks byte-stable snapshots; use BTree collections or sort",
                    t.text
                ),
            ));
        }
    }
}

/// Atomic method names whose call sites must spell out an `Ordering`.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// `bare-atomic`: an atomic-shaped method call whose argument list never
/// names `Ordering` — orderings smuggled through variables or glob
/// imports hide the synchronization contract from review. (A non-atomic
/// method that happens to share a name, e.g. some `cache.load(path)`,
/// also fires; annotate it, or rename — the collision itself confuses
/// readers.)
fn bare_atomic(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !ATOMIC_METHODS.contains(&t.text.as_str())
            || i == 0
            || !ctx.is_punct(i - 1, ".")
            || !ctx.is_punct(i + 1, "(")
        {
            continue;
        }
        let mut depth = 0usize;
        let mut named = false;
        for a in toks.iter().skip(i + 1) {
            if a.kind == TokenKind::Punct && a.text == "(" {
                depth += 1;
            } else if a.kind == TokenKind::Punct && a.text == ")" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.kind == TokenKind::Ident && a.text == "Ordering" {
                named = true;
            }
        }
        if !named {
            out.push(diag(
                ctx,
                t,
                "bare-atomic",
                format!("`.{}(…)` without an explicit `Ordering::…` at the call site", t.text),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_line_ranges;

    fn rules_on(path: &str, src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let ctx = FileContext::new(path, &lexed);
        run(&ctx)
    }

    #[test]
    fn test_region_detection_spans_cfg_test_mod() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn tail() {}\n";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed.tokens);
        assert_eq!(ranges, vec![(2, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn f() {}\n}\n";
        let lexed = lex(src);
        assert!(test_line_ranges(&lexed.tokens).is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt_but_library_code_fires() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        let diags = rules_on("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!((diags[0].rule, diags[0].line), ("panic-hygiene", 1));
    }

    #[test]
    fn float_eq_sees_literals_and_consts() {
        let diags = rules_on(
            "crates/x/src/lib.rs",
            "fn f(x: f32) -> bool { x == 0.5 || 1.0 != x || x == f32::EPSILON }",
        );
        assert_eq!(diags.iter().filter(|d| d.rule == "float-eq").count(), 3);
    }

    #[test]
    fn wall_clock_allows_obs_bench_and_serve() {
        let src = "fn f() { let _ = std::time::Instant::now(); }";
        assert_eq!(rules_on("crates/core/src/x.rs", src).len(), 1);
        assert!(rules_on("crates/obs/src/x.rs", src).is_empty());
        assert!(rules_on("crates/bench/benches/x.rs", src).is_empty());
        assert!(rules_on("crates/serve/src/lib.rs", src).is_empty());
    }

    #[test]
    fn bare_atomic_wants_ordering_in_args() {
        let src = "fn f(a: &std::sync::atomic::AtomicU64, o: Ordering) { a.load(o); }";
        let diags = rules_on("crates/x/src/lib.rs", src);
        assert_eq!(diags.iter().filter(|d| d.rule == "bare-atomic").count(), 1);
        let src = "fn f(a: &std::sync::atomic::AtomicU64) { a.load(Ordering::Relaxed); }";
        assert!(rules_on("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_only_on_export_paths() {
        let src = "use std::collections::HashMap;\n";
        assert!(rules_on("crates/x/src/math.rs", src).is_empty());
        let diags = rules_on("crates/x/src/snapshot.rs", src);
        assert_eq!(diags.iter().filter(|d| d.rule == "unordered-iter").count(), 1);
    }

    #[test]
    fn spawn_outside_pool_fires_inside_pool_and_serve_does_not() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_on("crates/x/src/lib.rs", src).len(), 1);
        assert!(rules_on("crates/nn/src/pool.rs", src).is_empty());
        assert!(rules_on("crates/serve/src/lib.rs", src).is_empty());
    }
}
