//! `nested-pool-run`: the PR 8 deadlock class — dispatching onto a
//! `WorkerPool` from code that itself runs inside a pool job closure.
//! With one global pool, a job that blocks on `pool.run(…)` waits for
//! workers that may all be waiting on *it*.
//!
//! Detection is call-graph based: for every function that dispatches
//! jobs (`pool.run(…)`, `pool::global().run(…)`, `WorkerPool::run`),
//! the calls made *inside its closure literals* are taken as the code
//! its jobs execute; if any pool dispatch is reachable from there, the
//! inner dispatch site is flagged with the witness chain from the
//! origin. A dispatch lexically inside a closure of a dispatching
//! function is flagged directly.
//!
//! Documented approximation: closure literals in a dispatching function
//! are treated as job bodies even when they are iterator adapters that
//! run inline on the caller (`.map(|img| self.infer(img))`). Those
//! sites are exactly where a reader must decide the same question, so
//! they carry reasoned `allow(nested-pool-run)` annotations instead of
//! being silently skipped. Serve's dedicated-pool design (jobs on
//! `BatchEngine`'s own pool never dispatch again) keeps the real
//! serving path clean. Test code is skipped on both ends.

use crate::callgraph::{boundary_stop, CallGraph, Reach};
use crate::diag::Diagnostic;
use crate::index::{FnId, WorkspaceIndex};
use crate::resolve::Resolver;

pub const RULE: &str = "nested-pool-run";

fn boundaried(ix: &WorkspaceIndex, id: FnId) -> bool {
    ix.fns[id].boundaries.iter().any(|b| b == RULE)
}

pub fn run(ix: &WorkspaceIndex, graph: &CallGraph, resolver: &Resolver, out: &mut Vec<Diagnostic>) {
    for origin in 0..ix.fns.len() {
        let f = &ix.fns[origin];
        if f.in_test || f.pool_runs.is_empty() || boundaried(ix, origin) {
            continue;
        }
        // Direct: a dispatch lexically inside one of this function's
        // closures is itself a job body dispatching again.
        for pr in f.pool_runs.iter().filter(|pr| pr.in_closure) {
            let mut d = Diagnostic::new(
                ix.files[f.file].relpath.clone(),
                pr.line,
                pr.col,
                RULE,
                format!(
                    "`{}.run(…)` inside a job closure of `{}` — a pool dispatch from within a pool job deadlocks when the pools are the same; route through the caller or a dedicated pool",
                    pr.receiver,
                    ix.qualified_name(origin)
                ),
            );
            d.witness = vec![ix.describe(origin)];
            out.push(d);
        }
        // Indirect: what the job closures call, transitively.
        let mut starts: Vec<FnId> = Vec::new();
        for call in f.calls.iter().filter(|c| c.in_closure) {
            starts.extend(resolver.resolve(ix, origin, call));
        }
        starts.sort_unstable();
        starts.dedup();
        if starts.is_empty() {
            continue;
        }
        let reach = Reach::compute(graph, &starts, boundary_stop(ix, RULE));
        for inner in 0..ix.fns.len() {
            let g = &ix.fns[inner];
            if !reach.seen[inner] || g.in_test || g.pool_runs.is_empty() || boundaried(ix, inner) {
                continue;
            }
            for pr in &g.pool_runs {
                let mut d = Diagnostic::new(
                    ix.files[g.file].relpath.clone(),
                    pr.line,
                    pr.col,
                    RULE,
                    format!(
                        "`{}.run(…)` reachable from a job closure of `{}` — a pool dispatch from within a pool job deadlocks when the pools are the same; route through the caller or a dedicated pool",
                        pr.receiver,
                        ix.qualified_name(origin)
                    ),
                );
                d.witness = {
                    let mut w = vec![ix.describe(origin)];
                    w.extend(reach.witness(ix, inner));
                    w
                };
                out.push(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut ix = WorkspaceIndex::default();
        for (path, src) in files {
            ix.add_file(path, &lex(src), false, &[], &[]);
        }
        let resolver = Resolver::new(&ix);
        let graph = CallGraph::build(&ix, &resolver);
        let mut out = Vec::new();
        run(&ix, &graph, &resolver, &mut out);
        out
    }

    #[test]
    fn indirect_nested_dispatch_fires_with_full_witness() {
        let diags = run_on(&[(
            "crates/a/src/lib.rs",
            "fn outer(pool: &WorkerPool) { let jobs = xs.iter().map(|x| helper(x)); \
             pool.run(jobs); }\n\
             fn helper(x: u32) { nested(x) }\n\
             fn nested(x: u32) { crate::pool::global().run(jobs()) }\n\
             fn jobs() -> Vec<fn()> { unimplemented!() }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE);
        assert_eq!(diags[0].line, 3);
        // origin, then start → … → inner dispatcher.
        assert_eq!(diags[0].witness.len(), 3, "{:?}", diags[0].witness);
        assert!(diags[0].witness[0].starts_with("pgmr_a::outer"));
        assert!(diags[0].witness[2].starts_with("pgmr_a::nested"));
    }

    #[test]
    fn direct_dispatch_inside_closure_fires() {
        let diags = run_on(&[(
            "crates/a/src/lib.rs",
            "fn f(pool: &WorkerPool) { pool.run(vec![Box::new(move || { \
             pool.run(Vec::new()); })]); }\n",
        )]);
        assert!(diags.iter().any(|d| d.rule == RULE), "{diags:?}");
    }

    #[test]
    fn dispatch_only_in_straight_line_code_is_clean() {
        let diags = run_on(&[(
            "crates/a/src/lib.rs",
            "fn f(pool: &WorkerPool) { let jobs = xs.iter().map(|x| leaf(x)); pool.run(jobs); }\n\
             fn leaf(x: u32) {}\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "fn f(pool: &WorkerPool) { pool.run(xs.iter().map(|x| g(x))); }\n\
                   fn g(x: u32) { pool().run(jobs()) }\n";
        let mut ix = WorkspaceIndex::default();
        // Whole file marked as a test file.
        ix.add_file("crates/a/tests/t.rs", &lex(src), true, &[], &[]);
        let resolver = Resolver::new(&ix);
        let graph = CallGraph::build(&ix, &resolver);
        let mut out = Vec::new();
        run(&ix, &graph, &resolver, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
