//! Diagnostics, their human rendering, and the machine-readable JSON
//! report (hand-rolled, matching the workspace's no-dependency JSON
//! style in `pgmr-obs`).

use std::fmt;

/// One finding: a rule fired at a source position. Semantic rules also
/// attach a witness chain — the call path proving reachability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// The rule id (`float-eq`, `hot-path-alloc`, `unused-allow`, …).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
    /// For call-graph rules: the witness chain, one qualified function
    /// per entry (`crate::Type::name (file:line)`), from the invariant
    /// root down to the flagged function. Empty for lexical rules.
    pub witness: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no witness chain (every lexical finding).
    pub fn new(
        file: String,
        line: usize,
        column: usize,
        rule: &'static str,
        message: String,
    ) -> Self {
        Diagnostic { file, line, column, rule, message, witness: Vec::new() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file, self.line, self.column, self.rule, self.message)?;
        for (i, step) in self.witness.iter().enumerate() {
            write!(f, "\n    {} {step}", if i == 0 { "witness:" } else { "      →" })?;
        }
        Ok(())
    }
}

/// The result of linting a file set, plus index-size and timing
/// metrics so CI can watch analysis cost across PRs.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// How many functions the semantic indexer extracted.
    pub indexed_fns: usize,
    /// How many call sites the indexer extracted.
    pub indexed_calls: usize,
    /// Wall-clock of the whole lint run in milliseconds, when measured
    /// (set by the CLI; deterministic tests leave it `None`).
    pub wall_ms: Option<u64>,
}

impl LintReport {
    /// Canonical ordering so output is byte-stable run to run.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.column, a.rule, &a.witness)
                .cmp(&(&b.file, b.line, b.column, b.rule, &b.witness))
        });
        self.diagnostics.dedup();
    }

    /// The machine-readable report: `{"version":2,"files_scanned":N,
    /// "indexed_fns":N,"indexed_calls":N,…,"diagnostics":[{…}]}` with
    /// diagnostics in canonical order. `wall_ms` appears only when
    /// measured, keeping test output deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 128);
        out.push_str("{\"version\":2,\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"indexed_fns\":");
        out.push_str(&self.indexed_fns.to_string());
        out.push_str(",\"indexed_calls\":");
        out.push_str(&self.indexed_calls.to_string());
        if let Some(ms) = self.wall_ms {
            out.push_str(",\"wall_ms\":");
            out.push_str(&ms.to_string());
        }
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"file\":");
            push_json_str(&mut out, &d.file);
            out.push_str(",\"line\":");
            out.push_str(&d.line.to_string());
            out.push_str(",\"column\":");
            out.push_str(&d.column.to_string());
            out.push_str(",\"rule\":");
            push_json_str(&mut out, d.rule);
            out.push_str(",\"message\":");
            push_json_str(&mut out, &d.message);
            if !d.witness.is_empty() {
                out.push_str(",\"witness\":[");
                for (j, w) in d.witness.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    push_json_str(&mut out, w);
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_rule_message() {
        let d = Diagnostic::new(
            "crates/x/src/lib.rs".into(),
            7,
            3,
            "float-eq",
            "exact float comparison".into(),
        );
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7:3: float-eq: exact float comparison");
    }

    #[test]
    fn display_appends_witness_chain() {
        let mut d = Diagnostic::new("a.rs".into(), 1, 1, "hot-path-alloc", "alloc".into());
        d.witness = vec!["x::root (a.rs:1)".into(), "x::leaf (a.rs:9)".into()];
        let shown = d.to_string();
        assert!(shown.contains("\n    witness: x::root (a.rs:1)"));
        assert!(shown.contains("\n          → x::leaf (a.rs:9)"));
    }

    #[test]
    fn json_escapes_sorts_and_carries_metrics() {
        let mut report = LintReport {
            diagnostics: vec![
                Diagnostic::new("b.rs".into(), 1, 1, "float-eq", "say \"no\"".into()),
                Diagnostic::new("a.rs".into(), 2, 1, "wall-clock", "tick".into()),
            ],
            files_scanned: 2,
            indexed_fns: 10,
            indexed_calls: 40,
            wall_ms: None,
        };
        report.sort();
        let json = report.to_json();
        assert!(json.starts_with(
            "{\"version\":2,\"files_scanned\":2,\"indexed_fns\":10,\"indexed_calls\":40,"
        ));
        assert!(!json.contains("wall_ms"), "wall_ms only when measured");
        assert!(json.contains("say \\\"no\\\""));
        let a = json.find("a.rs").expect("a.rs present");
        let b = json.find("b.rs").expect("b.rs present");
        assert!(a < b, "diagnostics must be sorted by file");
        report.wall_ms = Some(12);
        assert!(report.to_json().contains(",\"wall_ms\":12,"));
    }

    #[test]
    fn json_includes_witness_arrays() {
        let mut d = Diagnostic::new("a.rs".into(), 1, 1, "hot-path-alloc", "m".into());
        d.witness = vec!["root (a.rs:1)".into()];
        let report = LintReport { diagnostics: vec![d], files_scanned: 1, ..Default::default() };
        assert!(report.to_json().contains("\"witness\":[\"root (a.rs:1)\"]"));
    }
}
