//! Diagnostics, their human rendering, and the machine-readable JSON
//! report (hand-rolled, matching the workspace's no-dependency JSON
//! style in `pgmr-obs`).

use std::fmt;

/// One finding: a rule fired at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// The rule id (`float-eq`, `unused-allow`, …).
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file, self.line, self.column, self.rule, self.message)
    }
}

/// The result of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Canonical ordering so output is byte-stable run to run.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
        });
    }

    /// The machine-readable report: `{"version":1,"files_scanned":N,
    /// "diagnostics":[{…}]}` with diagnostics in canonical order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 128);
        out.push_str("{\"version\":1,\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"file\":");
            push_json_str(&mut out, &d.file);
            out.push_str(",\"line\":");
            out.push_str(&d.line.to_string());
            out.push_str(",\"column\":");
            out.push_str(&d.column.to_string());
            out.push_str(",\"rule\":");
            push_json_str(&mut out, d.rule);
            out.push_str(",\"message\":");
            push_json_str(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_col_rule_message() {
        let d = Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            column: 3,
            rule: "float-eq",
            message: "exact float comparison".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7:3: float-eq: exact float comparison");
    }

    #[test]
    fn json_escapes_and_sorts() {
        let mut report = LintReport {
            diagnostics: vec![
                Diagnostic {
                    file: "b.rs".into(),
                    line: 1,
                    column: 1,
                    rule: "float-eq",
                    message: "say \"no\"".into(),
                },
                Diagnostic {
                    file: "a.rs".into(),
                    line: 2,
                    column: 1,
                    rule: "wall-clock",
                    message: "tick".into(),
                },
            ],
            files_scanned: 2,
        };
        report.sort();
        let json = report.to_json();
        assert!(json.starts_with("{\"version\":1,\"files_scanned\":2,"));
        assert!(json.contains("say \\\"no\\\""));
        let a = json.find("a.rs").expect("a.rs present");
        let b = json.find("b.rs").expect("b.rs present");
        assert!(a < b, "diagnostics must be sorted by file");
    }
}
