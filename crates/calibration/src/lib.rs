//! # pgmr-calibration
//!
//! Confidence calibration by temperature scaling (Guo et al., used by the
//! paper's §IV-E comparison).
//!
//! Temperature scaling divides the logits by a single scalar `T` before the
//! softmax. `T` is fitted by minimizing negative log-likelihood on a
//! validation set — a one-dimensional convex problem we solve with
//! golden-section search. The paper's finding, which the `fig14` harness
//! reproduces: scaling lowers confidences (and thus shifts both FP-vs-
//! threshold and TP-vs-threshold curves) but **leaves the TP/FP Pareto
//! frontier unchanged**, because a single monotone transform cannot reorder
//! predictions.
//!
//! ## Example
//!
//! ```
//! use pgmr_calibration::{fit_temperature, scaled_softmax};
//!
//! // Overconfident logits: temperature > 1 softens them.
//! let logits = vec![vec![4.0, 0.0], vec![3.5, 0.0], vec![5.0, 0.0]];
//! let labels = vec![0, 1, 0]; // one of the confident answers is wrong
//! let t = fit_temperature(&logits, &labels);
//! assert!(t > 1.0);
//! let p = scaled_softmax(&logits[0], t);
//! assert!(p[0] < 0.98);
//! ```

use pgmr_metrics::PredictionRecord;

/// Numerically stable softmax of `logits / temperature`.
///
/// # Panics
///
/// Panics if `temperature <= 0` or `logits` is empty.
pub fn scaled_softmax(logits: &[f32], temperature: f32) -> Vec<f32> {
    assert!(temperature > 0.0, "temperature must be positive");
    assert!(!logits.is_empty(), "empty logit vector");
    let scaled: Vec<f32> = logits.iter().map(|&v| v / temperature).collect();
    let max = scaled.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scaled.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Mean negative log-likelihood of the labels under temperature-scaled
/// softmax.
///
/// # Panics
///
/// Panics on empty input, mismatched lengths, or out-of-range labels.
pub fn nll(logits: &[Vec<f32>], labels: &[usize], temperature: f32) -> f64 {
    assert!(!logits.is_empty(), "empty logit set");
    assert_eq!(logits.len(), labels.len(), "logit/label count mismatch");
    let mut total = 0.0f64;
    for (row, &label) in logits.iter().zip(labels) {
        assert!(label < row.len(), "label {label} out of range");
        let p = scaled_softmax(row, temperature);
        total -= (p[label].max(1e-12) as f64).ln();
    }
    total / logits.len() as f64
}

/// Fits the temperature minimizing validation NLL via golden-section search
/// over `T ∈ [0.05, 20]`.
///
/// # Panics
///
/// Panics on empty input or mismatched lengths.
pub fn fit_temperature(logits: &[Vec<f32>], labels: &[usize]) -> f32 {
    assert!(!logits.is_empty(), "empty logit set");
    assert_eq!(logits.len(), labels.len(), "logit/label count mismatch");
    // Golden-section search on log-temperature for better conditioning.
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (0.05f64.ln(), 20.0f64.ln());
    let f = |log_t: f64| nll(logits, labels, log_t.exp() as f32);
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..60 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = f(x2);
        }
    }
    ((lo + hi) / 2.0).exp() as f32
}

/// Converts logits + labels into [`PredictionRecord`]s under a temperature,
/// taking the arg-max class and its scaled-softmax probability.
///
/// # Panics
///
/// Panics on empty input or mismatched lengths.
pub fn records_at_temperature(
    logits: &[Vec<f32>],
    labels: &[usize],
    temperature: f32,
) -> Vec<PredictionRecord> {
    assert_eq!(logits.len(), labels.len(), "logit/label count mismatch");
    logits
        .iter()
        .zip(labels)
        .map(|(row, &label)| {
            let p = scaled_softmax(row, temperature);
            let mut best = 0;
            for (i, &v) in p.iter().enumerate().skip(1) {
                if v > p[best] {
                    best = i;
                }
            }
            PredictionRecord { label, predicted: best, confidence: p[best] }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_one_is_plain_softmax() {
        let p = scaled_softmax(&[1.0, 2.0, 3.0], 1.0);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn high_temperature_flattens() {
        let sharp = scaled_softmax(&[4.0, 0.0], 1.0);
        let soft = scaled_softmax(&[4.0, 0.0], 8.0);
        assert!(soft[0] < sharp[0]);
        assert!(soft[0] > 0.5, "ranking preserved");
    }

    #[test]
    fn scaling_never_reorders() {
        let logits = vec![0.3f32, -1.0, 2.5, 0.9];
        for t in [0.1f32, 0.5, 1.0, 3.0, 10.0] {
            let p = scaled_softmax(&logits, t);
            let mut order: Vec<usize> = (0..4).collect();
            order.sort_by(|&a, &b| p[b].partial_cmp(&p[a]).unwrap());
            assert_eq!(order, vec![2, 3, 0, 1], "t={t}");
        }
    }

    #[test]
    fn fit_finds_softening_temperature_for_overconfident_model() {
        // Model is right 60% of the time but always ~99% confident: the
        // NLL-optimal temperature must be well above 1.
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            logits.push(vec![5.0, 0.0]);
            labels.push(if i % 10 < 6 { 0 } else { 1 });
        }
        let t = fit_temperature(&logits, &labels);
        assert!(t > 2.0, "t = {t}");
        let before = nll(&logits, &labels, 1.0);
        let after = nll(&logits, &labels, t);
        assert!(after < before);
    }

    #[test]
    fn fit_keeps_calibrated_model_near_one() {
        // Logit gap ln(3): confidence 75%, and 75% of answers correct.
        let mut logits = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            logits.push(vec![(3.0f32).ln(), 0.0]);
            labels.push(if i % 4 < 3 { 0 } else { 1 });
        }
        let t = fit_temperature(&logits, &labels);
        assert!((t - 1.0).abs() < 0.15, "t = {t}");
    }

    #[test]
    fn records_take_argmax() {
        let logits = vec![vec![0.0, 3.0], vec![2.0, 0.0]];
        let recs = records_at_temperature(&logits, &[1, 1], 1.0);
        assert_eq!(recs[0].predicted, 1);
        assert!(recs[0].is_correct());
        assert_eq!(recs[1].predicted, 0);
        assert!(!recs[1].is_correct());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_temperature() {
        scaled_softmax(&[1.0], 0.0);
    }
}
