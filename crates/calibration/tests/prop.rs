//! Property-based tests for temperature scaling.

use pgmr_calibration::{fit_temperature, nll, records_at_temperature, scaled_softmax};
use proptest::prelude::*;

fn logit_set() -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<usize>)> {
    (2usize..5, 2usize..40).prop_flat_map(|(classes, n)| {
        (
            prop::collection::vec(prop::collection::vec(-8.0f32..8.0, classes), n),
            prop::collection::vec(0usize..classes, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scaled softmax is a distribution for any valid temperature.
    #[test]
    fn scaled_softmax_is_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..10), t in 0.05f32..20.0) {
        let p = scaled_softmax(&logits, t);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    /// The fitted temperature is a (near-)minimizer: NLL at the fit is no
    /// worse than at a grid of alternatives, up to search tolerance.
    #[test]
    fn fitted_temperature_minimizes_nll((logits, labels) in logit_set()) {
        let t = fit_temperature(&logits, &labels);
        prop_assert!((0.04..=21.0).contains(&t), "t = {t}");
        let at_fit = nll(&logits, &labels, t);
        for alt in [0.1f32, 0.5, 1.0, 2.0, 5.0, 10.0] {
            prop_assert!(
                at_fit <= nll(&logits, &labels, alt) + 1e-3,
                "t={t} worse than alt={alt}"
            );
        }
    }

    /// Temperature never changes which class is predicted, so accuracy is
    /// invariant under calibration — the structural reason the paper's
    /// Fig. 14 Pareto frontier cannot move.
    #[test]
    fn accuracy_invariant_under_temperature((logits, labels) in logit_set(), t in 0.05f32..20.0) {
        let base = records_at_temperature(&logits, &labels, 1.0);
        let scaled = records_at_temperature(&logits, &labels, t);
        let acc = |rs: &[pgmr_metrics::PredictionRecord]| {
            rs.iter().filter(|r| r.is_correct()).count()
        };
        prop_assert_eq!(acc(&base), acc(&scaled));
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert_eq!(a.predicted, b.predicted);
        }
    }

    /// Temperatures above 1 never increase any record's confidence.
    #[test]
    fn higher_temperature_softens((logits, labels) in logit_set(), t in 1.0f32..20.0) {
        let base = records_at_temperature(&logits, &labels, 1.0);
        let scaled = records_at_temperature(&logits, &labels, t);
        for (a, b) in base.iter().zip(&scaled) {
            prop_assert!(b.confidence <= a.confidence + 1e-5);
        }
    }
}
