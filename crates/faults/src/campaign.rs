//! Injection-campaign runner: many seeded fault trials against one
//! network, classified into masked / silent-data-corruption / detected
//! outcomes, with and without ABFT checksums.

use std::ops::RangeInclusive;

use pgmr_nn::pool::{shard_ranges, WorkerPool};
use pgmr_nn::Network;
use pgmr_tensor::{argmax, Tensor};

use crate::inject::{
    inject_weights, repair_weights, ActivationInjector, FaultSpec, SiteFilter, ANY_BIT,
};

/// Mixing constant (golden-ratio based) for deriving per-trial seeds from
/// the campaign seed, so trials are independent yet fully reproducible.
const TRIAL_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Classification of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The prediction matched the fault-free run (fault absorbed, or no
    /// fault landed at the sampled rate).
    Masked,
    /// The prediction silently changed — the dependability hazard.
    Sdc,
    /// An ABFT checksum caught the corruption before it reached the output.
    Detected,
}

/// Parameters of an injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of independent fault trials.
    pub trials: usize,
    /// Campaign seed; trial `t` runs with a seed derived from it.
    pub seed: u64,
    /// Per-element flip probability per trial.
    pub rate: f64,
    /// Eligible bit positions.
    pub bits: RangeInclusive<u8>,
    /// Eligible injection sites.
    pub sites: SiteFilter,
    /// ABFT verification tolerance (used when `checksums` is on).
    pub tolerance: f32,
    /// Whether the forward pass is ABFT-guarded.
    pub checksums: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            seed: 0,
            rate: 1e-3,
            bits: ANY_BIT,
            sites: SiteFilter::All,
            tolerance: pgmr_tensor::checksum::DEFAULT_TOLERANCE,
            checksums: true,
        }
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Trials run.
    pub trials: usize,
    /// Trials whose prediction matched the fault-free run.
    pub masked: usize,
    /// Trials with a silent prediction change.
    pub sdc: usize,
    /// Trials stopped by a checksum violation.
    pub detected: usize,
    /// Total bit flips injected across all trials.
    pub injected: usize,
}

impl CampaignReport {
    /// Fraction of trials ending in silent data corruption.
    pub fn sdc_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.sdc as f64 / self.trials as f64
    }

    /// Fraction of *unmasked* corruptions that the checksums caught:
    /// `detected / (detected + sdc)`. 1.0 when nothing went unmasked.
    pub fn detection_rate(&self) -> f64 {
        let unmasked = self.detected + self.sdc;
        if unmasked == 0 {
            return 1.0;
        }
        self.detected as f64 / unmasked as f64
    }
}

/// Derives the deterministic seed for trial `t` of a campaign.
fn trial_seed(campaign_seed: u64, t: usize) -> u64 {
    campaign_seed.wrapping_add((t as u64 + 1).wrapping_mul(TRIAL_SEED_STRIDE))
}

fn classify(predicted: usize, golden: usize) -> TrialOutcome {
    if predicted == golden {
        TrialOutcome::Masked
    } else {
        TrialOutcome::Sdc
    }
}

/// One transient activation-fault trial: outcome plus flips injected.
/// Trial `t` is a pure function of `(net, inputs, cfg, t)` — its injector
/// is seeded from [`trial_seed`] alone — which is what lets campaigns
/// shard across a worker pool without changing their results.
fn activation_trial(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    golden: &[usize],
    t: usize,
) -> (TrialOutcome, usize) {
    let input = &inputs[t % inputs.len()];
    let spec = FaultSpec::transient_activations(trial_seed(cfg.seed, t), cfg.rate)
        .with_bits(cfg.bits.clone())
        .with_sites(cfg.sites.clone());
    let inj = ActivationInjector::new(&spec);
    inj.begin_forward();
    let hook = |x: &mut [f32]| inj.apply(x);
    let outcome = if cfg.checksums {
        match net.forward_checked(input, false, Some(&hook), cfg.tolerance) {
            Err(_) => TrialOutcome::Detected,
            Ok(logits) => classify(argmax(logits.data()), golden[t % inputs.len()]),
        }
    } else {
        let logits = net.forward_with_hook(input, false, &hook);
        classify(argmax(logits.data()), golden[t % inputs.len()])
    };
    (outcome, inj.injected())
}

/// One persistent weight-fault trial: inject, evaluate, repair.
fn weight_trial(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    golden: &[usize],
    t: usize,
) -> (TrialOutcome, usize) {
    let input = &inputs[t % inputs.len()];
    let spec = FaultSpec::persistent_weights(trial_seed(cfg.seed, t), cfg.rate)
        .with_bits(cfg.bits.clone())
        .with_sites(cfg.sites.clone());
    let records = inject_weights(net, &spec);
    let outcome = if cfg.checksums {
        match net.forward_checked(input, false, None, cfg.tolerance) {
            Err(_) => TrialOutcome::Detected,
            Ok(logits) => classify(argmax(logits.data()), golden[t % inputs.len()]),
        }
    } else {
        let logits = net.forward(input, false);
        classify(argmax(logits.data()), golden[t % inputs.len()])
    };
    let injected = records.len();
    repair_weights(net, &records);
    (outcome, injected)
}

/// Folds per-trial results into a report, in any order — the counters
/// commute, so sharded campaigns sum to exactly the sequential report.
/// Mirrors the totals into the `faults.*` counters on the global
/// [`pgmr_obs`] registry.
fn tally(
    trials: usize,
    outcomes: impl IntoIterator<Item = (TrialOutcome, usize)>,
) -> CampaignReport {
    let mut report = CampaignReport { trials, masked: 0, sdc: 0, detected: 0, injected: 0 };
    for (outcome, injected) in outcomes {
        report.injected += injected;
        match outcome {
            TrialOutcome::Masked => report.masked += 1,
            TrialOutcome::Sdc => report.sdc += 1,
            TrialOutcome::Detected => report.detected += 1,
        }
    }
    let obs = pgmr_obs::global();
    obs.counter("faults.trials_total").add(report.trials as u64);
    obs.counter("faults.masked_total").add(report.masked as u64);
    obs.counter("faults.sdc_total").add(report.sdc as u64);
    obs.counter("faults.detected_total").add(report.detected as u64);
    obs.counter("faults.flips_total").add(report.injected as u64);
    report
}

/// One trial of a campaign: `(net, inputs, cfg, golden, t) → (outcome,
/// flips injected)`.
type TrialFn =
    fn(&mut Network, &[Tensor], &CampaignConfig, &[usize], usize) -> (TrialOutcome, usize);

/// Runs a campaign with per-shard network clones on `pool`. Each trial is
/// independently seeded, so the merged report is identical to the
/// sequential loop.
fn run_campaign_sharded(
    net: &Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    golden: &[usize],
    pool: &WorkerPool,
    trial: TrialFn,
) -> CampaignReport {
    let jobs: Vec<_> = shard_ranges(cfg.trials, pool.threads())
        .into_iter()
        .map(|range| {
            let mut net = net.clone();
            move || range.map(|t| trial(&mut net, inputs, cfg, golden, t)).collect::<Vec<_>>()
        })
        .collect();
    tally(cfg.trials, pool.run(jobs).into_iter().flatten())
}

/// Runs `cfg.trials` transient activation-fault trials against `net`,
/// cycling through `inputs`. Each trial compares the faulty prediction to
/// the fault-free prediction on the same input; with checksums on, a
/// verification failure counts as [`TrialOutcome::Detected`].
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_activation_campaign(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    tally(cfg.trials, (0..cfg.trials).map(|t| activation_trial(net, inputs, cfg, &golden, t)))
}

/// [`run_activation_campaign`], with trials sharded across `pool` on
/// per-worker network clones. Trial seeds depend only on the trial index,
/// so the report is bit-identical to the sequential runner.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_activation_campaign_with(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    pool: &WorkerPool,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    if pool.threads() == 1 || cfg.trials < 2 {
        return run_activation_campaign(net, inputs, cfg);
    }
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    run_campaign_sharded(net, inputs, cfg, &golden, pool, activation_trial)
}

/// Runs `cfg.trials` weight-fault trials: each trial injects persistent
/// flips, evaluates one input, then repairs the network. Because the ABFT
/// checksums are derived from the corrupted weights they stay consistent,
/// so with `cfg.checksums` on, weight faults still surface as
/// [`TrialOutcome::Sdc`] as long as the arithmetic stays finite (flips
/// violent enough to overflow into `inf`/`NaN` do trip verification) —
/// the experimental evidence that weight corruption needs ensemble-level
/// quarantine rather than checksums.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_weight_campaign(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    tally(cfg.trials, (0..cfg.trials).map(|t| weight_trial(net, inputs, cfg, &golden, t)))
}

/// [`run_weight_campaign`], with trials sharded across `pool` on
/// per-worker network clones. Each shard injects into and repairs its own
/// clone, so the caller's network is untouched and the merged report is
/// bit-identical to the sequential runner.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_weight_campaign_with(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    pool: &WorkerPool,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    if pool.threads() == 1 || cfg.trials < 2 {
        return run_weight_campaign(net, inputs, cfg);
    }
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    run_campaign_sharded(net, inputs, cfg, &golden, pool, weight_trial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{guarded_sites, EXPONENT_BITS};
    use pgmr_nn::layer::Layer;
    use pgmr_nn::layers::{Conv2d, Dense, Flatten, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_and_inputs() -> (Network, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(5);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 4, 8, 8, 3, 1, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 8 * 8, 6, &mut rng)),
        ];
        let net = Network::new(layers, "campaign-net", 6);
        let inputs =
            (0..4).map(|_| Tensor::uniform(vec![1, 1, 8, 8], -1.0, 1.0, &mut rng)).collect();
        (net, inputs)
    }

    #[test]
    fn campaigns_are_deterministic_across_runs() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig { trials: 40, seed: 123, rate: 5e-3, ..Default::default() };
        let a = run_activation_campaign(&mut net, &inputs, &cfg);
        let b = run_activation_campaign(&mut net, &inputs, &cfg);
        assert_eq!(a, b);
        let c = run_weight_campaign(&mut net, &inputs, &cfg);
        let d = run_weight_campaign(&mut net, &inputs, &cfg);
        assert_eq!(c, d);
    }

    #[test]
    fn parallel_campaigns_are_bit_identical_to_sequential() {
        use pgmr_nn::WorkerPool;
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig { trials: 37, seed: 99, rate: 5e-3, ..Default::default() };
        let seq_act = run_activation_campaign(&mut net, &inputs, &cfg);
        let seq_wt = run_weight_campaign(&mut net, &inputs, &cfg);
        for width in [2, 4] {
            let pool = WorkerPool::new(width);
            assert_eq!(
                run_activation_campaign_with(&mut net, &inputs, &cfg, &pool),
                seq_act,
                "activation campaign diverged at width {width}"
            );
            assert_eq!(
                run_weight_campaign_with(&mut net, &inputs, &cfg, &pool),
                seq_wt,
                "weight campaign diverged at width {width}"
            );
        }
        // Width 1 takes the sequential fast path; it must agree too.
        let solo = WorkerPool::new(1);
        assert_eq!(run_activation_campaign_with(&mut net, &inputs, &cfg, &solo), seq_act);
        assert_eq!(run_weight_campaign_with(&mut net, &inputs, &cfg, &solo), seq_wt);
    }

    #[test]
    fn checksums_catch_guarded_exponent_flips() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig {
            trials: 120,
            seed: 7,
            rate: 2e-3,
            bits: EXPONENT_BITS,
            sites: SiteFilter::Only(guarded_sites(&net)),
            ..Default::default()
        };
        let report = run_activation_campaign(&mut net, &inputs, &cfg);
        assert!(report.injected > 0, "rate too low, nothing injected");
        assert!(
            report.detection_rate() >= 0.95,
            "ABFT detection rate {:.3} below 0.95 ({} sdc, {} detected)",
            report.detection_rate(),
            report.sdc,
            report.detected
        );
    }

    #[test]
    fn unguarded_run_suffers_more_sdc() {
        let (mut net, inputs) = net_and_inputs();
        let base = CampaignConfig {
            trials: 150,
            seed: 21,
            rate: 5e-3,
            bits: EXPONENT_BITS,
            sites: SiteFilter::Only(guarded_sites(&net)),
            ..Default::default()
        };
        let guarded = run_activation_campaign(&mut net, &inputs, &base);
        let unguarded = run_activation_campaign(
            &mut net,
            &inputs,
            &CampaignConfig { checksums: false, ..base },
        );
        assert!(
            guarded.sdc < unguarded.sdc || unguarded.sdc == 0,
            "checksums should strictly reduce SDC: guarded {} vs unguarded {}",
            guarded.sdc,
            unguarded.sdc
        );
    }

    #[test]
    fn weight_faults_evade_checksums() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig {
            trials: 60,
            seed: 3,
            rate: 1e-2,
            bits: EXPONENT_BITS,
            ..Default::default()
        };
        let report = run_weight_campaign(&mut net, &inputs, &cfg);
        assert!(report.injected > 0);
        // ABFT checksums are derived from the (corrupted) weights, so they
        // stay consistent: nothing is detected, corruption is silent.
        assert_eq!(report.detected, 0);
        assert!(report.sdc > 0, "1% exponent flips should corrupt predictions");
    }

    #[test]
    fn report_rates_handle_edge_cases() {
        let empty = CampaignReport { trials: 0, masked: 0, sdc: 0, detected: 0, injected: 0 };
        assert_eq!(empty.sdc_rate(), 0.0);
        assert_eq!(empty.detection_rate(), 1.0);
        let mixed = CampaignReport { trials: 10, masked: 5, sdc: 2, detected: 3, injected: 9 };
        assert!((mixed.sdc_rate() - 0.2).abs() < 1e-12);
        assert!((mixed.detection_rate() - 0.6).abs() < 1e-12);
    }
}
