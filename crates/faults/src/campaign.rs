//! Injection-campaign runner: many seeded fault trials against one
//! network, classified into masked / silent-data-corruption / detected
//! outcomes, with and without ABFT checksums.

use std::collections::BTreeMap;
use std::ops::RangeInclusive;

use pgmr_nn::pool::{shard_ranges, WorkerPool};
use pgmr_nn::{CheckPlan, Network};
use pgmr_tensor::{argmax, Tensor};

use crate::inject::{
    inject_weights, repair_weights, ActivationInjector, FaultSpec, SiteFilter, ANY_BIT,
};

/// Mixing constant (golden-ratio based) for deriving per-trial seeds from
/// the campaign seed, so trials are independent yet fully reproducible.
const TRIAL_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Classification of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The prediction matched the fault-free run (fault absorbed, or no
    /// fault landed at the sampled rate).
    Masked,
    /// The prediction silently changed — the dependability hazard.
    Sdc,
    /// An ABFT checksum caught the corruption before it reached the output.
    Detected,
}

/// Parameters of an injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of independent fault trials.
    pub trials: usize,
    /// Campaign seed; trial `t` runs with a seed derived from it.
    pub seed: u64,
    /// Per-element flip probability per trial.
    pub rate: f64,
    /// Eligible bit positions.
    pub bits: RangeInclusive<u8>,
    /// Eligible injection sites.
    pub sites: SiteFilter,
    /// ABFT verification tolerance (used when `checksums` is on).
    pub tolerance: f32,
    /// Whether the forward pass is ABFT-guarded.
    pub checksums: bool,
    /// Optional selective-protection plan for the guarded forward. `None`
    /// (the default) verifies every layer; `Some(plan)` routes trials
    /// through [`Network::forward_checked_plan`], which is how the
    /// coverage-vs-throughput frontier measures each `top_k` point.
    /// Ignored when `checksums` is off.
    pub plan: Option<CheckPlan>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            seed: 0,
            rate: 1e-3,
            bits: ANY_BIT,
            sites: SiteFilter::All,
            tolerance: pgmr_tensor::checksum::DEFAULT_TOLERANCE,
            checksums: true,
            plan: None,
        }
    }
}

/// Per-site outcome tallies within a campaign: every trial that flipped a
/// bit at this site has its outcome attributed here (a trial touching
/// several sites counts once at each), so the tallies resolve *which*
/// sites' corruptions turn into SDCs — the raw material of a
/// vulnerability ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteTally {
    /// Injection site (hook invocation index for activation campaigns,
    /// parameter-slot index for weight campaigns).
    pub site: usize,
    /// Trials that flipped here and stayed masked.
    pub masked: usize,
    /// Trials that flipped here and ended in silent data corruption.
    pub sdc: usize,
    /// Trials that flipped here and were stopped by a checksum.
    pub detected: usize,
    /// Bit flips injected at this site across all trials.
    pub injected: usize,
}

impl SiteTally {
    /// An all-zero tally for `site`.
    pub fn empty(site: usize) -> Self {
        SiteTally { site, masked: 0, sdc: 0, detected: 0, injected: 0 }
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Trials run.
    pub trials: usize,
    /// Trials whose prediction matched the fault-free run.
    pub masked: usize,
    /// Trials with a silent prediction change.
    pub sdc: usize,
    /// Trials stopped by a checksum violation.
    pub detected: usize,
    /// Total bit flips injected across all trials.
    pub injected: usize,
    /// Outcome tallies resolved per injection site, sorted by site index.
    /// Sites where no trial ever flipped a bit are absent (the site
    /// sweeps guarantee an entry for every swept site regardless).
    pub per_site: Vec<SiteTally>,
}

impl CampaignReport {
    /// The tally for `site`, if any trial flipped a bit there.
    pub fn site(&self, site: usize) -> Option<&SiteTally> {
        self.per_site.iter().find(|t| t.site == site)
    }
    /// Fraction of trials ending in silent data corruption.
    pub fn sdc_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.sdc as f64 / self.trials as f64
    }

    /// Fraction of *unmasked* corruptions that the checksums caught:
    /// `detected / (detected + sdc)`. 1.0 when nothing went unmasked.
    pub fn detection_rate(&self) -> f64 {
        let unmasked = self.detected + self.sdc;
        if unmasked == 0 {
            return 1.0;
        }
        self.detected as f64 / unmasked as f64
    }
}

/// Derives the deterministic seed for trial `t` of a campaign.
fn trial_seed(campaign_seed: u64, t: usize) -> u64 {
    campaign_seed.wrapping_add((t as u64 + 1).wrapping_mul(TRIAL_SEED_STRIDE))
}

fn classify(predicted: usize, golden: usize) -> TrialOutcome {
    if predicted == golden {
        TrialOutcome::Masked
    } else {
        TrialOutcome::Sdc
    }
}

/// One trial's result: its outcome plus the per-site flip counts that
/// produced it (sorted by site).
type TrialResult = (TrialOutcome, Vec<(usize, usize)>);

/// Runs the guarded forward a trial asked for: plan-aware when the config
/// carries a selective-protection plan, uniformly checked otherwise.
fn checked_forward(
    net: &mut Network,
    input: &Tensor,
    hook: Option<pgmr_nn::network::ActivationHook<'_>>,
    cfg: &CampaignConfig,
) -> Result<Tensor, pgmr_tensor::checksum::ChecksumFault> {
    match &cfg.plan {
        Some(plan) => net.forward_checked_plan(input, false, hook, cfg.tolerance, plan),
        None => net.forward_checked(input, false, hook, cfg.tolerance),
    }
}

/// One transient activation-fault trial: outcome plus per-site flips.
/// Trial `t` is a pure function of `(net, inputs, cfg, t)` — its injector
/// is seeded from [`trial_seed`] alone — which is what lets campaigns
/// shard across a worker pool without changing their results.
fn activation_trial(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    golden: &[usize],
    t: usize,
) -> TrialResult {
    let input = &inputs[t % inputs.len()];
    let spec = FaultSpec::transient_activations(trial_seed(cfg.seed, t), cfg.rate)
        .with_bits(cfg.bits.clone())
        .with_sites(cfg.sites.clone());
    let inj = ActivationInjector::new(&spec);
    inj.begin_forward();
    let hook = |x: &mut [f32]| inj.apply(x);
    let outcome = if cfg.checksums {
        match checked_forward(net, input, Some(&hook), cfg) {
            Err(_) => TrialOutcome::Detected,
            Ok(logits) => classify(argmax(logits.data()), golden[t % inputs.len()]),
        }
    } else {
        let logits = net.forward_with_hook(input, false, &hook);
        classify(argmax(logits.data()), golden[t % inputs.len()])
    };
    (outcome, inj.site_flips())
}

/// One persistent weight-fault trial: inject, evaluate, repair. Sites in
/// the result are parameter-slot indices.
fn weight_trial(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    golden: &[usize],
    t: usize,
) -> TrialResult {
    let input = &inputs[t % inputs.len()];
    let spec = FaultSpec::persistent_weights(trial_seed(cfg.seed, t), cfg.rate)
        .with_bits(cfg.bits.clone())
        .with_sites(cfg.sites.clone());
    let records = inject_weights(net, &spec);
    let outcome = if cfg.checksums {
        match checked_forward(net, input, None, cfg) {
            Err(_) => TrialOutcome::Detected,
            Ok(logits) => classify(argmax(logits.data()), golden[t % inputs.len()]),
        }
    } else {
        let logits = net.forward(input, false);
        classify(argmax(logits.data()), golden[t % inputs.len()])
    };
    let mut by_site: BTreeMap<usize, usize> = BTreeMap::new();
    for r in &records {
        *by_site.entry(r.site).or_insert(0) += 1;
    }
    repair_weights(net, &records);
    (outcome, by_site.into_iter().collect())
}

/// Folds per-trial results into a report, in any order — the counters
/// commute and the per-site map is keyed (not ordered), so sharded
/// campaigns sum to exactly the sequential report. Mirrors the totals
/// into the `faults.*` counters on the global [`pgmr_obs`] registry.
fn tally(trials: usize, outcomes: impl IntoIterator<Item = TrialResult>) -> CampaignReport {
    let mut report = CampaignReport {
        trials,
        masked: 0,
        sdc: 0,
        detected: 0,
        injected: 0,
        per_site: Vec::new(),
    };
    let mut per_site: BTreeMap<usize, SiteTally> = BTreeMap::new();
    for (outcome, flips) in outcomes {
        match outcome {
            TrialOutcome::Masked => report.masked += 1,
            TrialOutcome::Sdc => report.sdc += 1,
            TrialOutcome::Detected => report.detected += 1,
        }
        for &(site, n) in &flips {
            report.injected += n;
            let t = per_site.entry(site).or_insert_with(|| SiteTally::empty(site));
            t.injected += n;
            match outcome {
                TrialOutcome::Masked => t.masked += 1,
                TrialOutcome::Sdc => t.sdc += 1,
                TrialOutcome::Detected => t.detected += 1,
            }
        }
    }
    report.per_site = per_site.into_values().collect();
    let obs = pgmr_obs::global();
    obs.counter("faults.trials_total").add(report.trials as u64);
    obs.counter("faults.masked_total").add(report.masked as u64);
    obs.counter("faults.sdc_total").add(report.sdc as u64);
    obs.counter("faults.detected_total").add(report.detected as u64);
    obs.counter("faults.flips_total").add(report.injected as u64);
    report
}

/// One trial of a campaign: `(net, inputs, cfg, golden, t) → (outcome,
/// per-site flips)`.
type TrialFn = fn(&mut Network, &[Tensor], &CampaignConfig, &[usize], usize) -> TrialResult;

/// Runs a campaign with per-shard network clones on `pool`. Each trial is
/// independently seeded, so the merged report is identical to the
/// sequential loop.
fn run_campaign_sharded(
    net: &Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    golden: &[usize],
    pool: &WorkerPool,
    trial: TrialFn,
) -> CampaignReport {
    let jobs: Vec<_> = shard_ranges(cfg.trials, pool.threads())
        .into_iter()
        .map(|range| {
            let mut net = net.clone();
            move || range.map(|t| trial(&mut net, inputs, cfg, golden, t)).collect::<Vec<_>>()
        })
        .collect();
    tally(cfg.trials, pool.run(jobs).into_iter().flatten())
}

/// Runs `cfg.trials` transient activation-fault trials against `net`,
/// cycling through `inputs`. Each trial compares the faulty prediction to
/// the fault-free prediction on the same input; with checksums on, a
/// verification failure counts as [`TrialOutcome::Detected`].
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_activation_campaign(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    tally(cfg.trials, (0..cfg.trials).map(|t| activation_trial(net, inputs, cfg, &golden, t)))
}

/// [`run_activation_campaign`], with trials sharded across `pool` on
/// per-worker network clones. Trial seeds depend only on the trial index,
/// so the report is bit-identical to the sequential runner.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_activation_campaign_with(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    pool: &WorkerPool,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    if pool.threads() == 1 || cfg.trials < 2 {
        return run_activation_campaign(net, inputs, cfg);
    }
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    run_campaign_sharded(net, inputs, cfg, &golden, pool, activation_trial)
}

/// Runs `cfg.trials` weight-fault trials: each trial injects persistent
/// flips, evaluates one input, then repairs the network. Because the ABFT
/// checksums are derived from the corrupted weights they stay consistent,
/// so with `cfg.checksums` on, weight faults still surface as
/// [`TrialOutcome::Sdc`] as long as the arithmetic stays finite (flips
/// violent enough to overflow into `inf`/`NaN` do trip verification) —
/// the experimental evidence that weight corruption needs ensemble-level
/// quarantine rather than checksums.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_weight_campaign(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    tally(cfg.trials, (0..cfg.trials).map(|t| weight_trial(net, inputs, cfg, &golden, t)))
}

/// [`run_weight_campaign`], with trials sharded across `pool` on
/// per-worker network clones. Each shard injects into and repairs its own
/// clone, so the caller's network is untouched and the merged report is
/// bit-identical to the sequential runner.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn run_weight_campaign_with(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &CampaignConfig,
    pool: &WorkerPool,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "campaign needs at least one input");
    if pool.threads() == 1 || cfg.trials < 2 {
        return run_weight_campaign(net, inputs, cfg);
    }
    let golden: Vec<usize> = inputs.iter().map(|x| argmax(net.forward(x, false).data())).collect();
    run_campaign_sharded(net, inputs, cfg, &golden, pool, weight_trial)
}

/// Parameters of an MRFI-style per-site resolution sweep: instead of one
/// campaign spraying flips across a site filter, each listed site gets its
/// own `trials_per_site`-trial campaign with injection confined to that
/// site — so the merged per-site tallies measure every site's SDC
/// contribution with equal statistical weight, regardless of how many
/// elements the site holds.
#[derive(Debug, Clone)]
pub struct SiteSweepConfig {
    /// Trials devoted to each site.
    pub trials_per_site: usize,
    /// Sweep seed; site `s` runs a campaign seeded from `(seed, s)`.
    pub seed: u64,
    /// Per-element flip probability per trial.
    pub rate: f64,
    /// Eligible bit positions.
    pub bits: RangeInclusive<u8>,
    /// The sites to measure, one confined campaign each.
    pub sites: Vec<usize>,
    /// ABFT verification tolerance (used when `checksums` is on).
    pub tolerance: f32,
    /// Whether trial forwards are ABFT-guarded. Vulnerability profiling
    /// runs with this *off*: it measures where faults become SDCs when
    /// nothing is protected.
    pub checksums: bool,
}

impl Default for SiteSweepConfig {
    fn default() -> Self {
        SiteSweepConfig {
            trials_per_site: 50,
            seed: 0,
            rate: 1e-3,
            bits: ANY_BIT,
            sites: Vec::new(),
            tolerance: pgmr_tensor::checksum::DEFAULT_TOLERANCE,
            checksums: false,
        }
    }
}

/// Derives the deterministic campaign seed for one site of a sweep.
fn site_seed(sweep_seed: u64, site: usize) -> u64 {
    sweep_seed ^ (site as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// The confined single-site campaign config for site `site` of a sweep.
fn site_campaign_config(cfg: &SiteSweepConfig, site: usize) -> CampaignConfig {
    CampaignConfig {
        trials: cfg.trials_per_site,
        seed: site_seed(cfg.seed, site),
        rate: cfg.rate,
        bits: cfg.bits.clone(),
        sites: SiteFilter::Only(vec![site]),
        tolerance: cfg.tolerance,
        checksums: cfg.checksums,
        plan: None,
    }
}

/// Merges per-site campaign reports into one sweep report. Every swept
/// site is guaranteed a [`SiteTally`] entry, even if none of its trials
/// landed a flip (possible at low rates on small sites).
fn merge_site_reports(cfg: &SiteSweepConfig, reports: Vec<CampaignReport>) -> CampaignReport {
    let mut per_site: BTreeMap<usize, SiteTally> =
        cfg.sites.iter().map(|&s| (s, SiteTally::empty(s))).collect();
    let mut merged = CampaignReport {
        trials: 0,
        masked: 0,
        sdc: 0,
        detected: 0,
        injected: 0,
        per_site: Vec::new(),
    };
    for report in reports {
        merged.trials += report.trials;
        merged.masked += report.masked;
        merged.sdc += report.sdc;
        merged.detected += report.detected;
        merged.injected += report.injected;
        for t in report.per_site {
            let e = per_site.entry(t.site).or_insert_with(|| SiteTally::empty(t.site));
            e.masked += t.masked;
            e.sdc += t.sdc;
            e.detected += t.detected;
            e.injected += t.injected;
        }
    }
    merged.per_site = per_site.into_values().collect();
    merged
}

/// One full campaign: `(net, inputs, cfg) → report`.
type CampaignFn = fn(&mut Network, &[Tensor], &CampaignConfig) -> CampaignReport;

fn run_site_sweep(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &SiteSweepConfig,
    runner: CampaignFn,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "site sweep needs at least one input");
    assert!(!cfg.sites.is_empty(), "site sweep needs at least one site");
    let reports = cfg
        .sites
        .iter()
        .map(|&s| runner(net, inputs, &site_campaign_config(cfg, s)))
        .collect::<Vec<_>>();
    merge_site_reports(cfg, reports)
}

fn run_site_sweep_with(
    net: &Network,
    inputs: &[Tensor],
    cfg: &SiteSweepConfig,
    pool: &WorkerPool,
    runner: CampaignFn,
) -> CampaignReport {
    assert!(!inputs.is_empty(), "site sweep needs at least one input");
    assert!(!cfg.sites.is_empty(), "site sweep needs at least one site");
    let jobs: Vec<_> = cfg
        .sites
        .iter()
        .map(|&s| {
            let mut net = net.clone();
            let site_cfg = site_campaign_config(cfg, s);
            move || runner(&mut net, inputs, &site_cfg)
        })
        .collect();
    merge_site_reports(cfg, pool.run(jobs))
}

/// Sweeps transient activation faults one site at a time (see
/// [`SiteSweepConfig`]). The merged report carries a [`SiteTally`] for
/// every swept site; aggregate counters sum over all per-site campaigns.
///
/// # Panics
///
/// Panics if `inputs` or `cfg.sites` is empty.
pub fn run_activation_site_sweep(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &SiteSweepConfig,
) -> CampaignReport {
    run_site_sweep(net, inputs, cfg, run_activation_campaign)
}

/// [`run_activation_site_sweep`], sharded one site per pool job on
/// per-worker network clones. Site campaigns are independently seeded and
/// merged by site index, so the report is bit-identical to the sequential
/// sweep.
///
/// # Panics
///
/// Panics if `inputs` or `cfg.sites` is empty.
pub fn run_activation_site_sweep_with(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &SiteSweepConfig,
    pool: &WorkerPool,
) -> CampaignReport {
    if pool.threads() == 1 || cfg.sites.len() < 2 {
        return run_activation_site_sweep(net, inputs, cfg);
    }
    run_site_sweep_with(net, inputs, cfg, pool, run_activation_campaign)
}

/// Sweeps persistent weight faults one parameter slot at a time; sites
/// are [`pgmr_nn::ParamSlot`] indices in visit order.
///
/// # Panics
///
/// Panics if `inputs` or `cfg.sites` is empty.
pub fn run_weight_site_sweep(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &SiteSweepConfig,
) -> CampaignReport {
    run_site_sweep(net, inputs, cfg, run_weight_campaign)
}

/// [`run_weight_site_sweep`], sharded one site per pool job on per-worker
/// network clones; bit-identical to the sequential sweep.
///
/// # Panics
///
/// Panics if `inputs` or `cfg.sites` is empty.
pub fn run_weight_site_sweep_with(
    net: &mut Network,
    inputs: &[Tensor],
    cfg: &SiteSweepConfig,
    pool: &WorkerPool,
) -> CampaignReport {
    if pool.threads() == 1 || cfg.sites.len() < 2 {
        return run_weight_site_sweep(net, inputs, cfg);
    }
    run_site_sweep_with(net, inputs, cfg, pool, run_weight_campaign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{guarded_sites, EXPONENT_BITS};
    use pgmr_nn::layer::Layer;
    use pgmr_nn::layers::{Conv2d, Dense, Flatten, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_and_inputs() -> (Network, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(5);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 4, 8, 8, 3, 1, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 8 * 8, 6, &mut rng)),
        ];
        let net = Network::new(layers, "campaign-net", 6);
        let inputs =
            (0..4).map(|_| Tensor::uniform(vec![1, 1, 8, 8], -1.0, 1.0, &mut rng)).collect();
        (net, inputs)
    }

    #[test]
    fn campaigns_are_deterministic_across_runs() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig { trials: 40, seed: 123, rate: 5e-3, ..Default::default() };
        let a = run_activation_campaign(&mut net, &inputs, &cfg);
        let b = run_activation_campaign(&mut net, &inputs, &cfg);
        assert_eq!(a, b);
        let c = run_weight_campaign(&mut net, &inputs, &cfg);
        let d = run_weight_campaign(&mut net, &inputs, &cfg);
        assert_eq!(c, d);
    }

    #[test]
    fn parallel_campaigns_are_bit_identical_to_sequential() {
        use pgmr_nn::WorkerPool;
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig { trials: 37, seed: 99, rate: 5e-3, ..Default::default() };
        let seq_act = run_activation_campaign(&mut net, &inputs, &cfg);
        let seq_wt = run_weight_campaign(&mut net, &inputs, &cfg);
        for width in [2, 4] {
            let pool = WorkerPool::new(width);
            assert_eq!(
                run_activation_campaign_with(&mut net, &inputs, &cfg, &pool),
                seq_act,
                "activation campaign diverged at width {width}"
            );
            assert_eq!(
                run_weight_campaign_with(&mut net, &inputs, &cfg, &pool),
                seq_wt,
                "weight campaign diverged at width {width}"
            );
        }
        // Width 1 takes the sequential fast path; it must agree too.
        let solo = WorkerPool::new(1);
        assert_eq!(run_activation_campaign_with(&mut net, &inputs, &cfg, &solo), seq_act);
        assert_eq!(run_weight_campaign_with(&mut net, &inputs, &cfg, &solo), seq_wt);
    }

    #[test]
    fn checksums_catch_guarded_exponent_flips() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig {
            trials: 120,
            seed: 7,
            rate: 2e-3,
            bits: EXPONENT_BITS,
            sites: SiteFilter::Only(guarded_sites(&net)),
            ..Default::default()
        };
        let report = run_activation_campaign(&mut net, &inputs, &cfg);
        assert!(report.injected > 0, "rate too low, nothing injected");
        assert!(
            report.detection_rate() >= 0.95,
            "ABFT detection rate {:.3} below 0.95 ({} sdc, {} detected)",
            report.detection_rate(),
            report.sdc,
            report.detected
        );
    }

    #[test]
    fn unguarded_run_suffers_more_sdc() {
        let (mut net, inputs) = net_and_inputs();
        let base = CampaignConfig {
            trials: 150,
            seed: 21,
            rate: 5e-3,
            bits: EXPONENT_BITS,
            sites: SiteFilter::Only(guarded_sites(&net)),
            ..Default::default()
        };
        let guarded = run_activation_campaign(&mut net, &inputs, &base);
        let unguarded = run_activation_campaign(
            &mut net,
            &inputs,
            &CampaignConfig { checksums: false, ..base },
        );
        assert!(
            guarded.sdc < unguarded.sdc || unguarded.sdc == 0,
            "checksums should strictly reduce SDC: guarded {} vs unguarded {}",
            guarded.sdc,
            unguarded.sdc
        );
    }

    #[test]
    fn weight_faults_evade_checksums() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig {
            trials: 60,
            seed: 3,
            rate: 1e-2,
            bits: EXPONENT_BITS,
            ..Default::default()
        };
        let report = run_weight_campaign(&mut net, &inputs, &cfg);
        assert!(report.injected > 0);
        // ABFT checksums are derived from the (corrupted) weights, so they
        // stay consistent: nothing is detected, corruption is silent.
        assert_eq!(report.detected, 0);
        assert!(report.sdc > 0, "1% exponent flips should corrupt predictions");
    }

    #[test]
    fn report_rates_handle_edge_cases() {
        let empty = CampaignReport {
            trials: 0,
            masked: 0,
            sdc: 0,
            detected: 0,
            injected: 0,
            per_site: Vec::new(),
        };
        assert_eq!(empty.sdc_rate(), 0.0);
        assert_eq!(empty.detection_rate(), 1.0);
        let mixed = CampaignReport {
            trials: 10,
            masked: 5,
            sdc: 2,
            detected: 3,
            injected: 9,
            per_site: Vec::new(),
        };
        assert!((mixed.sdc_rate() - 0.2).abs() < 1e-12);
        assert!((mixed.detection_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn per_site_tallies_sum_to_aggregates_and_respect_filters() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig {
            trials: 60,
            seed: 11,
            rate: 5e-3,
            sites: SiteFilter::Only(vec![1]),
            ..Default::default()
        };
        let report = run_activation_campaign(&mut net, &inputs, &cfg);
        assert!(report.injected > 0);
        // Injection was confined to site 1, so the resolution must be too.
        assert_eq!(report.per_site.len(), 1);
        let t = report.site(1).expect("confined site must be tallied");
        assert_eq!(t.injected, report.injected);
        // Trials where no flip landed (possible at this rate) carry no
        // site attribution; every other outcome lands on site 1 exactly.
        let attributed = t.masked + t.sdc + t.detected;
        assert!(attributed > 0 && attributed <= report.trials);
        assert_eq!(report.masked + report.sdc + report.detected, report.trials);
        assert!(t.masked <= report.masked && t.sdc <= report.sdc && t.detected <= report.detected);
    }

    #[test]
    fn per_site_resolution_commutes_across_shards() {
        use pgmr_nn::WorkerPool;
        let (mut net, inputs) = net_and_inputs();
        let cfg = CampaignConfig {
            trials: 41,
            seed: 17,
            rate: 5e-3,
            bits: EXPONENT_BITS,
            ..Default::default()
        };
        let seq = run_activation_campaign(&mut net, &inputs, &cfg);
        assert!(seq.per_site.len() > 1, "multi-site run should resolve several sites");
        for width in [2, 4] {
            let pool = WorkerPool::new(width);
            // Full-report Eq covers the per-site vectors too.
            assert_eq!(run_activation_campaign_with(&mut net, &inputs, &cfg, &pool), seq);
        }
        let wt_seq = run_weight_campaign(&mut net, &inputs, &cfg);
        assert!(!wt_seq.per_site.is_empty());
        let pool = WorkerPool::new(3);
        assert_eq!(run_weight_campaign_with(&mut net, &inputs, &cfg, &pool), wt_seq);
    }

    #[test]
    fn site_sweep_measures_every_site_and_matches_pooled() {
        use pgmr_nn::WorkerPool;
        let (mut net, inputs) = net_and_inputs();
        let cfg = SiteSweepConfig {
            trials_per_site: 25,
            seed: 29,
            rate: 2e-3,
            bits: EXPONENT_BITS,
            sites: guarded_sites(&net),
            ..Default::default()
        };
        let seq = run_activation_site_sweep(&mut net, &inputs, &cfg);
        assert_eq!(seq.trials, cfg.trials_per_site * cfg.sites.len());
        // Every swept site has an entry, in sorted order.
        let swept: Vec<usize> = seq.per_site.iter().map(|t| t.site).collect();
        assert_eq!(swept, cfg.sites, "one tally per swept site, site-sorted");
        for width in [2, 4] {
            let pool = WorkerPool::new(width);
            let par = run_activation_site_sweep_with(&mut net, &inputs, &cfg, &pool);
            assert_eq!(par, seq, "site-sharded sweep diverged at width {width}");
        }
    }

    #[test]
    fn plan_aware_campaign_detects_less_when_checks_are_off() {
        use pgmr_nn::CheckPlan;
        let (mut net, inputs) = net_and_inputs();
        let base = CampaignConfig {
            trials: 120,
            seed: 7,
            rate: 2e-3,
            bits: EXPONENT_BITS,
            sites: SiteFilter::Only(guarded_sites(&net)),
            ..Default::default()
        };
        let full_plan =
            CampaignConfig { plan: Some(CheckPlan::full(net.num_layers())), ..base.clone() };
        // A full plan is the uniformly-checked forward: identical report.
        let uniform = run_activation_campaign(&mut net, &inputs, &base);
        let planned = run_activation_campaign(&mut net, &inputs, &full_plan);
        assert_eq!(uniform, planned);
        // An empty plan verifies nothing: no trial can end in Detected.
        let off_plan = CampaignConfig { plan: Some(CheckPlan::off(net.num_layers())), ..base };
        let off = run_activation_campaign(&mut net, &inputs, &off_plan);
        assert_eq!(off.detected, 0, "nothing is checked, nothing can be detected");
        assert!(uniform.detected > 0);
    }
}
