//! The bit-flip injection engine: fault specifications, the activation-hook
//! injector, and persistent weight corruption/repair.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::ops::RangeInclusive;

use pgmr_nn::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 8 exponent bits of an IEEE-754 single — flips here rescale the value
/// by a power of two and are the high-consequence faults ABFT must catch.
pub const EXPONENT_BITS: RangeInclusive<u8> = 23..=30;
/// The 23 mantissa bits — flips here perturb the value by at most a factor
/// of two and are frequently masked.
pub const MANTISSA_BITS: RangeInclusive<u8> = 0..=22;
/// The sign bit.
pub const SIGN_BIT: RangeInclusive<u8> = 31..=31;
/// Any of the 32 bits, uniformly.
pub const ANY_BIT: RangeInclusive<u8> = 0..=31;

/// Flips bit `bit` (0 = LSB of the mantissa, 31 = sign) of `v`.
///
/// # Panics
///
/// Panics if `bit > 31`.
pub fn flip_bit(v: f32, bit: u8) -> f32 {
    assert!(bit < 32, "bit index {bit} out of range");
    f32::from_bits(v.to_bits() ^ (1u32 << bit))
}

/// What state the fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// Stored parameters — the flip persists until repaired.
    Weights,
    /// Inter-layer activations — the flip lives for one forward pass.
    Activations,
}

/// Whether a fault recurs across forward passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// One-shot: the corruption affects a single inference.
    Transient,
    /// Stuck: the corruption persists until explicitly repaired.
    Persistent,
}

/// Restricts injection to a subset of sites.
///
/// For activation faults a *site* is a hook invocation index in
/// [`Network::forward_checked`] order: site 0 is the network input, site
/// `i` is the output of layer `i - 1`. For weight faults a site is a
/// [`pgmr_nn::ParamSlot`] index in [`Network::visit_slots`] order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteFilter {
    /// Every site is eligible.
    All,
    /// Only the listed site indices are eligible.
    Only(Vec<usize>),
}

impl SiteFilter {
    /// True when `site` is eligible for injection.
    pub fn admits(&self, site: usize) -> bool {
        match self {
            SiteFilter::All => true,
            SiteFilter::Only(sites) => sites.contains(&site),
        }
    }
}

/// A complete, seeded description of a fault-injection experiment.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// RNG seed; identical specs inject identical faults.
    pub seed: u64,
    /// Per-element flip probability.
    pub rate: f64,
    /// What state is corrupted.
    pub target: FaultTarget,
    /// Whether the corruption persists across inferences.
    pub mode: FaultMode,
    /// Which bit positions may be flipped (inclusive).
    pub bits: RangeInclusive<u8>,
    /// Which sites (hook indices or parameter slots) are eligible.
    pub sites: SiteFilter,
}

impl FaultSpec {
    /// Transient single-bit flips in inter-layer activations — the ABFT
    /// detection target. Defaults to uniform bit choice over all 32 bits.
    pub fn transient_activations(seed: u64, rate: f64) -> Self {
        FaultSpec {
            seed,
            rate,
            target: FaultTarget::Activations,
            mode: FaultMode::Transient,
            bits: ANY_BIT,
            sites: SiteFilter::All,
        }
    }

    /// Persistent single-bit flips in stored weights — the quarantine
    /// target (ABFT-consistent, hence undetectable by checksums).
    pub fn persistent_weights(seed: u64, rate: f64) -> Self {
        FaultSpec {
            seed,
            rate,
            target: FaultTarget::Weights,
            mode: FaultMode::Persistent,
            bits: ANY_BIT,
            sites: SiteFilter::All,
        }
    }

    /// Restricts flips to the given bit positions.
    pub fn with_bits(mut self, bits: RangeInclusive<u8>) -> Self {
        assert!(*bits.end() < 32, "bit range extends past bit 31");
        self.bits = bits;
        self
    }

    /// Restricts injection to the given sites.
    pub fn with_sites(mut self, sites: SiteFilter) -> Self {
        self.sites = sites;
        self
    }
}

/// One injected flip, recorded with enough context to undo it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    /// Site index (hook invocation or parameter slot, per [`SiteFilter`]).
    pub site: usize,
    /// Flat element index within the site's buffer.
    pub elem: usize,
    /// Flipped bit position.
    pub bit: u8,
    /// Value before the flip.
    pub before: f32,
    /// Value after the flip.
    pub after: f32,
}

/// Hook-sites of a network whose outputs carry ABFT checksums (dense and
/// convolution layers), in [`Network::forward_checked`] hook order.
///
/// Useful for campaigns that measure checksum coverage in isolation:
/// faults on unguarded sites (inputs, activation functions, reshapes) are
/// *consistently absorbed* into the next layer's checksums — they
/// propagate as if they were legitimate inputs — so they dilute the
/// detection-rate denominator without exercising the guard.
pub fn guarded_sites(net: &Network) -> Vec<usize> {
    net.cost_profile()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == "dense" || c.kind == "conv2d")
        .map(|(i, _)| i + 1) // hook site i+1 is the output of layer i
        .collect()
}

/// Seeded bit-flip injector usable as a [`Network::forward_with_hook`] /
/// [`Network::forward_checked`] activation hook.
///
/// The hook signature is `&dyn Fn(&mut Tensor)`, so the injector keeps its
/// RNG and site counter behind interior mutability. Call
/// [`ActivationInjector::begin_forward`] before every forward pass to
/// reset the site counter; the RNG deliberately keeps advancing so
/// repeated passes (retries) sample fresh faults, while reconstructing the
/// injector from the same spec replays the exact sequence.
#[derive(Debug)]
pub struct ActivationInjector {
    rng: RefCell<StdRng>,
    rate: f64,
    bits: RangeInclusive<u8>,
    sites: SiteFilter,
    site: Cell<usize>,
    injected: Cell<usize>,
    site_flips: RefCell<BTreeMap<usize, usize>>,
}

impl ActivationInjector {
    /// Builds an injector from a spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not target activations.
    pub fn new(spec: &FaultSpec) -> Self {
        assert_eq!(
            spec.target,
            FaultTarget::Activations,
            "ActivationInjector needs an activation-targeted spec"
        );
        ActivationInjector {
            rng: RefCell::new(StdRng::seed_from_u64(spec.seed)),
            rate: spec.rate,
            bits: spec.bits.clone(),
            sites: spec.sites.clone(),
            site: Cell::new(0),
            injected: Cell::new(0),
            site_flips: RefCell::new(BTreeMap::new()),
        }
    }

    /// Resets the site counter; call before each forward pass.
    pub fn begin_forward(&self) {
        self.site.set(0);
    }

    /// The activation hook body: flips each element with the spec's
    /// probability when the current site is eligible, then advances the
    /// site counter. Takes the activation's raw row-major data, matching
    /// the `pgmr_nn::Network` hook signature.
    pub fn apply(&self, data: &mut [f32]) {
        let site = self.site.get();
        self.site.set(site + 1);
        if !self.sites.admits(site) {
            return;
        }
        let mut rng = self.rng.borrow_mut();
        let (lo, hi) = (*self.bits.start(), *self.bits.end());
        let mut flipped = 0usize;
        for v in data {
            if rng.gen_bool(self.rate) {
                let bit = rng.gen_range(lo..=hi);
                *v = flip_bit(*v, bit);
                flipped += 1;
            }
        }
        if flipped > 0 {
            self.injected.set(self.injected.get() + flipped);
            *self.site_flips.borrow_mut().entry(site).or_insert(0) += flipped;
        }
    }

    /// Total flips injected since construction.
    pub fn injected(&self) -> usize {
        self.injected.get()
    }

    /// Flips injected since construction, resolved per site: sorted
    /// `(site, count)` pairs, sites that never flipped omitted. This is
    /// the per-site attribution campaigns use to turn trial outcomes into
    /// a vulnerability ranking.
    pub fn site_flips(&self) -> Vec<(usize, usize)> {
        self.site_flips.borrow().iter().map(|(&s, &n)| (s, n)).collect()
    }
}

impl Clone for ActivationInjector {
    fn clone(&self) -> Self {
        ActivationInjector {
            rng: RefCell::new(self.rng.borrow().clone()),
            rate: self.rate,
            bits: self.bits.clone(),
            sites: self.sites.clone(),
            site: Cell::new(self.site.get()),
            injected: Cell::new(self.injected.get()),
            site_flips: RefCell::new(self.site_flips.borrow().clone()),
        }
    }
}

/// Injects persistent bit flips into a network's parameters, returning a
/// record per flip (in slot-visit order) so [`repair_weights`] can undo
/// them exactly.
pub fn inject_weights(net: &mut Network, spec: &FaultSpec) -> Vec<FaultRecord> {
    assert_eq!(spec.target, FaultTarget::Weights, "inject_weights needs a weight-targeted spec");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let (lo, hi) = (*spec.bits.start(), *spec.bits.end());
    let mut records = Vec::new();
    let mut slot_idx = 0usize;
    net.visit_slots(&mut |slot| {
        if spec.sites.admits(slot_idx) {
            for (elem, v) in slot.value.data_mut().iter_mut().enumerate() {
                if rng.gen_bool(spec.rate) {
                    let bit = rng.gen_range(lo..=hi);
                    let before = *v;
                    *v = flip_bit(*v, bit);
                    records.push(FaultRecord { site: slot_idx, elem, bit, before, after: *v });
                }
            }
        }
        slot_idx += 1;
    });
    records
}

/// Restores every recorded weight flip to its pre-fault value.
pub fn repair_weights(net: &mut Network, records: &[FaultRecord]) {
    let mut slot_idx = 0usize;
    net.visit_slots(&mut |slot| {
        for r in records.iter().filter(|r| r.site == slot_idx) {
            slot.value.data_mut()[r.elem] = r.before;
        }
        slot_idx += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmr_nn::layer::Layer;
    use pgmr_nn::layers::{Conv2d, Dense, Flatten, Relu};
    use pgmr_tensor::Tensor;

    fn small_net(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 4, 6, 6, 3, 1, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 6 * 6, 5, &mut rng)),
        ];
        Network::new(layers, "small", 5)
    }

    #[test]
    fn flip_bit_is_involutive() {
        for bit in 0..32u8 {
            let v = -3.75f32;
            assert_eq!(flip_bit(flip_bit(v, bit), bit), v);
        }
    }

    #[test]
    fn guarded_sites_are_conv_and_dense_outputs() {
        let net = small_net(0);
        // Layers: conv2d(0) relu(1) flatten(2) dense(3) → sites 1 and 4.
        assert_eq!(guarded_sites(&net), vec![1, 4]);
    }

    #[test]
    fn weight_injection_is_seed_deterministic_and_repairable() {
        let mut net = small_net(1);
        let pristine = net.state_dict();
        let spec = FaultSpec::persistent_weights(99, 0.05);
        let a = inject_weights(&mut net, &spec);
        assert!(!a.is_empty(), "5% rate on >100 params should flip something");
        repair_weights(&mut net, &a);
        let restored = net.state_dict();
        for (p, r) in pristine.iter().zip(&restored) {
            assert_eq!(p.data(), r.data(), "repair must restore weights exactly");
        }
        // Same spec on the repaired net replays the identical fault list.
        let b = inject_weights(&mut net, &spec);
        assert_eq!(a, b);
        repair_weights(&mut net, &b);
    }

    #[test]
    fn activation_injector_respects_site_filter() {
        let spec = FaultSpec::transient_activations(7, 1.0).with_sites(SiteFilter::Only(vec![1]));
        let inj = ActivationInjector::new(&spec);
        inj.begin_forward();
        let mut t = Tensor::ones(vec![4]);
        inj.apply(t.data_mut()); // site 0: filtered out
        assert_eq!(t.data(), &[1.0; 4]);
        assert_eq!(inj.injected(), 0);
        inj.apply(t.data_mut()); // site 1: rate 1.0 flips every element
        assert_eq!(inj.injected(), 4);
        // pgmr-lint: allow(float-eq): a flipped bit can never leave the exact 1.0 seed value bit-identical
        assert!(t.data().iter().all(|&v| v != 1.0));
    }

    #[test]
    fn injector_hook_composes_with_forward_checked() {
        let mut net = small_net(2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::uniform(vec![1, 1, 6, 6], -1.0, 1.0, &mut rng);
        // Exponent flips on guarded outputs only: the checksum must fire.
        let spec = FaultSpec::transient_activations(11, 0.05)
            .with_bits(EXPONENT_BITS)
            .with_sites(SiteFilter::Only(guarded_sites(&net)));
        let inj = ActivationInjector::new(&spec);
        let mut caught = 0;
        for _ in 0..20 {
            inj.begin_forward();
            let before = inj.injected();
            let hook = |d: &mut [f32]| inj.apply(d);
            let r = net.forward_checked(&x, false, Some(&hook), 1e-4);
            if inj.injected() > before {
                if r.is_err() {
                    caught += 1;
                }
            } else {
                assert!(r.is_ok(), "no injection must verify cleanly");
            }
        }
        assert!(caught > 0, "some injected trials must be detected");
    }
}
