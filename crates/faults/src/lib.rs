//! # pgmr-faults
//!
//! Seeded, reproducible bit-flip fault injection for the PolygraphMR
//! reproduction, plus the campaign harness that measures silent-data-
//! corruption (SDC) and detection rates with and without ABFT checksums.
//!
//! The fault model follows the soft-error literature the paper's
//! dependability claims target: a fault is a single-event upset that flips
//! one bit of an IEEE-754 value, either
//!
//! * **transiently** in an inter-layer activation — the canonical
//!   "corrupted GEMM output" that algorithm-based fault tolerance (ABFT)
//!   row/column checksums are designed to catch, or
//! * **persistently** in a stored weight — invisible to ABFT (the
//!   checksums are derived from the corrupted weight and stay consistent)
//!   and therefore the motivating case for ensemble-level quarantine in
//!   `polygraph-mr`.
//!
//! Everything is driven by explicit seeds: the same [`FaultSpec`] replayed
//! against the same network and inputs injects bit-identical faults, which
//! makes campaign reports reproducible across runs and machines.
//!
//! ## Example
//!
//! ```
//! use pgmr_faults::{flip_bit, FaultSpec};
//!
//! // Flipping the same bit twice restores the value.
//! let v = 1.5f32;
//! assert_eq!(flip_bit(flip_bit(v, 30), 30), v);
//!
//! // A spec describes where and how often faults land.
//! let spec = FaultSpec::transient_activations(42, 1e-3);
//! assert_eq!(spec.seed, 42);
//! ```

pub mod campaign;
pub mod inject;
pub mod profile;

pub use campaign::{
    run_activation_campaign, run_activation_campaign_with, run_activation_site_sweep,
    run_activation_site_sweep_with, run_weight_campaign, run_weight_campaign_with,
    run_weight_site_sweep, run_weight_site_sweep_with, CampaignConfig, CampaignReport,
    SiteSweepConfig, SiteTally, TrialOutcome,
};
pub use inject::{
    flip_bit, guarded_sites, inject_weights, repair_weights, ActivationInjector, FaultMode,
    FaultRecord, FaultSpec, FaultTarget, SiteFilter, ANY_BIT, EXPONENT_BITS, MANTISSA_BITS,
    SIGN_BIT,
};
pub use profile::{
    ProfileConfig, ProfileDecodeError, ProfileSource, SiteVulnerability, VulnerabilityProfile,
};
