//! Measured per-site vulnerability profiles and the selective-protection
//! plans derived from them.
//!
//! A [`VulnerabilityProfile`] records, for one architecture, how often
//! transient faults at each guarded activation site turned into silent
//! data corruption when nothing was protected — the measurement HarDNN
//! argues concentrates in a few layers. Profiles are persisted next to
//! the cached weight blobs in a digest-verified binary format (same
//! FNV-1a primitive as the v3 weight codec) and *self-heal*: a corrupted,
//! stale, or mismatched artifact is silently replaced by re-running the
//! measurement campaign.
//!
//! ```text
//! magic  b"PGVP"
//! version u16
//! body_len u32                          (bytes after the checksum field)
//! checksum u64                          (FNV-1a over the body)
//! body:
//!   arch_id len u16 + utf-8 bytes
//!   seed u64, rate f64, bits lo u8 + hi u8, trials_per_site u32
//!   site count u32
//!   per site: site u32, masked u32, sdc u32, detected u32, injected u64
//! ```

use std::error::Error;
use std::fmt;
use std::ops::RangeInclusive;
use std::path::Path;

use bytes::{Buf, BufMut, BytesMut};
use pgmr_nn::pool::WorkerPool;
use pgmr_nn::serialize::fnv1a;
use pgmr_nn::{CheckPlan, Network, ProtectionLevel};
use pgmr_tensor::Tensor;

use crate::campaign::{run_activation_site_sweep, run_activation_site_sweep_with, SiteSweepConfig};
use crate::inject::{guarded_sites, ANY_BIT};

const MAGIC: &[u8; 4] = b"PGVP";
const VERSION: u16 = 1;

/// Parameters of a vulnerability measurement: the per-site activation
/// campaign a profile is derived from. Two profiles are comparable only
/// when their configs match, so the config is persisted inside the
/// artifact and checked on load.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileConfig {
    /// Trials devoted to each guarded site.
    pub trials_per_site: usize,
    /// Measurement seed.
    pub seed: u64,
    /// Per-element flip probability per trial.
    pub rate: f64,
    /// Eligible bit positions.
    pub bits: RangeInclusive<u8>,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { trials_per_site: 40, seed: 0, rate: 1e-3, bits: ANY_BIT }
    }
}

impl ProfileConfig {
    /// True when `other` describes the identical measurement (bit-exact
    /// rate comparison: these are configuration constants, not computed
    /// quantities).
    fn same_measurement(&self, other: &ProfileConfig) -> bool {
        self.trials_per_site == other.trials_per_site
            && self.seed == other.seed
            && self.rate.to_bits() == other.rate.to_bits()
            && self.bits == other.bits
    }
}

/// Measured outcome tallies for one guarded activation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteVulnerability {
    /// Hook-site index (site `s` is the output of layer `s − 1`).
    pub site: usize,
    /// Trials whose faults were absorbed.
    pub masked: usize,
    /// Trials that ended in silent data corruption — the ranking key.
    pub sdc: usize,
    /// Trials stopped by a checksum (zero for unguarded measurement).
    pub detected: usize,
    /// Bit flips injected at this site.
    pub injected: usize,
}

/// A persisted per-site SDC-contribution measurement for one
/// architecture, from which [`CheckPlan`]s are derived.
#[derive(Debug, Clone, PartialEq)]
pub struct VulnerabilityProfile {
    /// Architecture the measurement ran against.
    pub arch_id: String,
    /// The campaign parameters that produced it.
    pub config: ProfileConfig,
    /// Per-site tallies, sorted by site index.
    pub sites: Vec<SiteVulnerability>,
}

/// Where [`VulnerabilityProfile::load_or_measure`] got its profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSource {
    /// Decoded from a valid on-disk artifact.
    Cached,
    /// Measured fresh (no artifact, corruption, or config/arch mismatch)
    /// and re-persisted.
    Measured,
}

/// Error decoding a profile artifact. Any of these triggers the
/// self-healing re-measurement path in
/// [`VulnerabilityProfile::load_or_measure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileDecodeError {
    /// The blob does not start with the expected magic bytes.
    BadMagic,
    /// The blob's format version is unsupported.
    BadVersion(u16),
    /// The blob ended before all declared data was read.
    Truncated,
    /// The body digest does not match — storage corruption.
    ChecksumMismatch,
}

impl fmt::Display for ProfileDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileDecodeError::BadMagic => write!(f, "missing PGVP magic bytes"),
            ProfileDecodeError::BadVersion(v) => write!(f, "unsupported profile version {v}"),
            ProfileDecodeError::Truncated => write!(f, "profile truncated"),
            ProfileDecodeError::ChecksumMismatch => {
                write!(f, "profile checksum mismatch (storage corruption)")
            }
        }
    }
}

impl Error for ProfileDecodeError {}

impl VulnerabilityProfile {
    /// Measures a profile by sweeping unguarded transient activation
    /// faults over every guarded site of `net` (see
    /// [`run_activation_site_sweep`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or `net` has no guarded sites.
    pub fn measure(net: &mut Network, inputs: &[Tensor], cfg: &ProfileConfig) -> Self {
        let report = run_activation_site_sweep(net, inputs, &Self::sweep_config(net, cfg));
        Self::from_report(net, cfg, report)
    }

    /// Like [`VulnerabilityProfile::measure`], with per-site campaigns sharded
    /// across `pool`; the profile is bit-identical to the sequential one.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or `net` has no guarded sites.
    pub fn measure_with(
        net: &mut Network,
        inputs: &[Tensor],
        cfg: &ProfileConfig,
        pool: &WorkerPool,
    ) -> Self {
        let report =
            run_activation_site_sweep_with(net, inputs, &Self::sweep_config(net, cfg), pool);
        Self::from_report(net, cfg, report)
    }

    fn sweep_config(net: &Network, cfg: &ProfileConfig) -> SiteSweepConfig {
        let sites = guarded_sites(net);
        assert!(!sites.is_empty(), "{} has no guarded sites to profile", net.arch_id());
        SiteSweepConfig {
            trials_per_site: cfg.trials_per_site,
            seed: cfg.seed,
            rate: cfg.rate,
            bits: cfg.bits.clone(),
            sites,
            // Unguarded measurement: the profile asks where faults *become*
            // SDCs, not where the checksums would have stopped them.
            checksums: false,
            ..SiteSweepConfig::default()
        }
    }

    fn from_report(
        net: &Network,
        cfg: &ProfileConfig,
        report: crate::campaign::CampaignReport,
    ) -> Self {
        let sites = report
            .per_site
            .into_iter()
            .map(|t| SiteVulnerability {
                site: t.site,
                masked: t.masked,
                sdc: t.sdc,
                detected: t.detected,
                injected: t.injected,
            })
            .collect();
        VulnerabilityProfile { arch_id: net.arch_id().to_string(), config: cfg.clone(), sites }
    }

    /// Sites ranked by SDC contribution: most vulnerable first, site
    /// index breaking ties (so the ranking is total and deterministic).
    pub fn ranking(&self) -> Vec<&SiteVulnerability> {
        let mut ranked: Vec<&SiteVulnerability> = self.sites.iter().collect();
        ranked.sort_by(|a, b| b.sdc.cmp(&a.sdc).then(a.site.cmp(&b.site)));
        ranked
    }

    /// The single most SDC-prone site, if the profile is non-empty.
    pub fn most_critical_site(&self) -> Option<usize> {
        self.ranking().first().map(|v| v.site)
    }

    /// Derives the [`CheckPlan`] a [`ProtectionLevel`] asks for, for a
    /// network with `num_layers` layers. Hook site `s` is the output of
    /// layer `s − 1`, so the plan checks layer `s − 1` for each selected
    /// site. With `duplicate_critical`, the most vulnerable layer also
    /// runs duplicated (compute-twice-compare) — except under
    /// [`ProtectionLevel::Off`], which disables everything.
    ///
    /// # Panics
    ///
    /// Panics if a profiled site maps outside the network's layers.
    pub fn plan(
        &self,
        level: ProtectionLevel,
        num_layers: usize,
        duplicate_critical: bool,
    ) -> CheckPlan {
        let mut plan = match level {
            ProtectionLevel::Off => return CheckPlan::off(num_layers),
            ProtectionLevel::Full => CheckPlan::full(num_layers),
            ProtectionLevel::Selective { top_k } => {
                let mut check = vec![false; num_layers];
                for v in self.ranking().into_iter().take(top_k) {
                    assert!(
                        v.site >= 1 && v.site <= num_layers,
                        "profiled site {} does not map to a layer of a {num_layers}-layer network",
                        v.site
                    );
                    check[v.site - 1] = true;
                }
                CheckPlan::new(check, None)
            }
        };
        if duplicate_critical {
            if let Some(site) = self.most_critical_site() {
                assert!(
                    site >= 1 && site <= num_layers,
                    "profiled site {site} does not map to a layer of a {num_layers}-layer network"
                );
                plan.set_duplicate(Some(site - 1));
            }
        }
        plan
    }

    /// Serializes the profile (see the module docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = BytesMut::new();
        let arch = self.arch_id.as_bytes();
        body.put_u16_le(arch.len() as u16);
        body.put_slice(arch);
        body.put_u64_le(self.config.seed);
        // The compat `bytes` stub has no f64 accessors; the bit pattern
        // round-trips exactly either way.
        body.put_u64_le(self.config.rate.to_bits());
        body.put_u8(*self.config.bits.start());
        body.put_u8(*self.config.bits.end());
        body.put_u32_le(self.config.trials_per_site as u32);
        body.put_u32_le(self.sites.len() as u32);
        for v in &self.sites {
            body.put_u32_le(v.site as u32);
            body.put_u32_le(v.masked as u32);
            body.put_u32_le(v.sdc as u32);
            body.put_u32_le(v.detected as u32);
            body.put_u64_le(v.injected as u64);
        }
        let mut buf = BytesMut::with_capacity(body.len() + 18);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(body.len() as u32);
        buf.put_u64_le(fnv1a(&body));
        buf.put_slice(&body);
        buf.to_vec()
    }

    /// Decodes a profile artifact produced by
    /// [`VulnerabilityProfile::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileDecodeError`] when the blob is malformed or its
    /// digest does not match.
    pub fn decode(blob: &[u8]) -> Result<Self, ProfileDecodeError> {
        let mut buf = blob;
        if buf.remaining() < 4 || &buf[..4] != MAGIC {
            return Err(ProfileDecodeError::BadMagic);
        }
        buf.advance(4);
        if buf.remaining() < 2 {
            return Err(ProfileDecodeError::Truncated);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(ProfileDecodeError::BadVersion(version));
        }
        if buf.remaining() < 12 {
            return Err(ProfileDecodeError::Truncated);
        }
        let body_len = buf.get_u32_le() as usize;
        let checksum = buf.get_u64_le();
        if buf.remaining() < body_len {
            return Err(ProfileDecodeError::Truncated);
        }
        if fnv1a(&buf[..body_len]) != checksum {
            return Err(ProfileDecodeError::ChecksumMismatch);
        }
        if buf.remaining() < 2 {
            return Err(ProfileDecodeError::Truncated);
        }
        let arch_len = buf.get_u16_le() as usize;
        if buf.remaining() < arch_len {
            return Err(ProfileDecodeError::Truncated);
        }
        let arch_id = String::from_utf8_lossy(&buf[..arch_len]).into_owned();
        buf.advance(arch_len);
        if buf.remaining() < 8 + 8 + 2 + 4 + 4 {
            return Err(ProfileDecodeError::Truncated);
        }
        let seed = buf.get_u64_le();
        let rate = f64::from_bits(buf.get_u64_le());
        let lo = buf.get_u8();
        let hi = buf.get_u8();
        let trials_per_site = buf.get_u32_le() as usize;
        let count = buf.get_u32_le() as usize;
        let mut sites = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 4 * 4 + 8 {
                return Err(ProfileDecodeError::Truncated);
            }
            sites.push(SiteVulnerability {
                site: buf.get_u32_le() as usize,
                masked: buf.get_u32_le() as usize,
                sdc: buf.get_u32_le() as usize,
                detected: buf.get_u32_le() as usize,
                injected: buf.get_u64_le() as usize,
            });
        }
        let config = ProfileConfig { trials_per_site, seed, rate, bits: lo..=hi };
        Ok(VulnerabilityProfile { arch_id, config, sites })
    }

    /// Loads the profile for `net` from `path`, or measures and persists
    /// it. Any decode failure, architecture mismatch, or measurement-
    /// config mismatch silently *self-heals*: the campaign re-runs and
    /// the fresh artifact overwrites the stale one.
    ///
    /// # Errors
    ///
    /// Returns an error only for filesystem failures while writing the
    /// refreshed artifact (a missing or unreadable file just re-measures).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or `net` has no guarded sites.
    pub fn load_or_measure(
        path: &Path,
        net: &mut Network,
        inputs: &[Tensor],
        cfg: &ProfileConfig,
    ) -> std::io::Result<(Self, ProfileSource)> {
        if let Ok(blob) = std::fs::read(path) {
            if let Ok(profile) = Self::decode(&blob) {
                if profile.arch_id == net.arch_id() && profile.config.same_measurement(cfg) {
                    return Ok((profile, ProfileSource::Cached));
                }
            }
        }
        let profile = Self::measure(net, inputs, cfg);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, profile.encode())?;
        Ok((profile, ProfileSource::Measured))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgmr_nn::layer::Layer;
    use pgmr_nn::layers::{Conv2d, Dense, Flatten, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_and_inputs() -> (Network, Vec<Tensor>) {
        let mut rng = StdRng::seed_from_u64(5);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 4, 8, 8, 3, 1, 1, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Dense::new(4 * 8 * 8, 6, &mut rng)),
        ];
        let net = Network::new(layers, "profile-net", 6);
        let inputs =
            (0..4).map(|_| Tensor::uniform(vec![1, 1, 8, 8], -1.0, 1.0, &mut rng)).collect();
        (net, inputs)
    }

    fn test_config() -> ProfileConfig {
        ProfileConfig {
            trials_per_site: 20,
            seed: 9,
            rate: 5e-3,
            bits: crate::inject::EXPONENT_BITS,
        }
    }

    #[test]
    fn measurement_covers_guarded_sites_and_is_deterministic() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = test_config();
        let a = VulnerabilityProfile::measure(&mut net, &inputs, &cfg);
        let b = VulnerabilityProfile::measure(&mut net, &inputs, &cfg);
        assert_eq!(a, b);
        let sites: Vec<usize> = a.sites.iter().map(|v| v.site).collect();
        assert_eq!(sites, guarded_sites(&net));
        // Unguarded measurement can never classify a trial as detected.
        assert!(a.sites.iter().all(|v| v.detected == 0));
        let pool = WorkerPool::new(3);
        assert_eq!(VulnerabilityProfile::measure_with(&mut net, &inputs, &cfg, &pool), a);
    }

    #[test]
    fn ranking_is_sdc_descending_with_site_tiebreak() {
        let profile = VulnerabilityProfile {
            arch_id: "x".into(),
            config: ProfileConfig::default(),
            sites: vec![
                SiteVulnerability { site: 1, masked: 5, sdc: 2, detected: 0, injected: 9 },
                SiteVulnerability { site: 3, masked: 1, sdc: 7, detected: 0, injected: 8 },
                SiteVulnerability { site: 4, masked: 2, sdc: 2, detected: 0, injected: 4 },
            ],
        };
        let ranked: Vec<usize> = profile.ranking().iter().map(|v| v.site).collect();
        assert_eq!(ranked, vec![3, 1, 4]);
        assert_eq!(profile.most_critical_site(), Some(3));
    }

    #[test]
    fn plans_follow_the_protection_level() {
        let profile = VulnerabilityProfile {
            arch_id: "x".into(),
            config: ProfileConfig::default(),
            sites: vec![
                SiteVulnerability { site: 1, masked: 5, sdc: 2, detected: 0, injected: 9 },
                SiteVulnerability { site: 4, masked: 1, sdc: 7, detected: 0, injected: 8 },
            ],
        };
        let full = profile.plan(ProtectionLevel::Full, 4, false);
        assert_eq!(full, CheckPlan::full(4));
        let off = profile.plan(ProtectionLevel::Off, 4, true);
        assert_eq!(off, CheckPlan::off(4), "Off disables duplication too");
        let top1 = profile.plan(ProtectionLevel::Selective { top_k: 1 }, 4, false);
        assert!(top1.checks(3), "site 4 is layer 3");
        assert!(!top1.checks(0) && !top1.checks(1) && !top1.checks(2));
        let dup = profile.plan(ProtectionLevel::Selective { top_k: 2 }, 4, true);
        assert!(dup.checks(0) && dup.checks(3));
        assert_eq!(dup.duplicated_layer(), Some(3));
    }

    #[test]
    fn round_trip_is_exact() {
        let (mut net, inputs) = net_and_inputs();
        let profile = VulnerabilityProfile::measure(&mut net, &inputs, &test_config());
        let decoded = VulnerabilityProfile::decode(&profile.encode()).expect("clean round trip");
        assert_eq!(decoded, profile);
    }

    #[test]
    fn single_bit_flips_anywhere_are_rejected() {
        let (mut net, inputs) = net_and_inputs();
        let profile = VulnerabilityProfile::measure(&mut net, &inputs, &test_config());
        let blob = profile.encode();
        // Header flips trip magic/version/length checks; body flips (from
        // byte 18) trip the FNV digest.
        for pos in [0usize, 5, 18, blob.len() / 2, blob.len() - 1] {
            for bit in [0u8, 3, 7] {
                let mut bad = blob.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    VulnerabilityProfile::decode(&bad).is_err(),
                    "bit {bit} of byte {pos} flipped silently"
                );
            }
        }
        let mut bad = blob.clone();
        bad[blob.len() - 2] ^= 0x10;
        assert_eq!(VulnerabilityProfile::decode(&bad), Err(ProfileDecodeError::ChecksumMismatch));
        let cut = &blob[..blob.len() / 2];
        assert_eq!(VulnerabilityProfile::decode(cut), Err(ProfileDecodeError::Truncated));
    }

    #[test]
    fn load_or_measure_self_heals_corruption_and_mismatches() {
        let (mut net, inputs) = net_and_inputs();
        let cfg = test_config();
        let dir = std::env::temp_dir().join(format!("pgvp-test-{}", std::process::id()));
        let path = dir.join("profile-net.pgvp");
        let _ = std::fs::remove_dir_all(&dir);

        // First call measures and persists.
        let (fresh, src) =
            VulnerabilityProfile::load_or_measure(&path, &mut net, &inputs, &cfg).unwrap();
        assert_eq!(src, ProfileSource::Measured);
        // Second call hits the cache, bit-identically.
        let (cached, src) =
            VulnerabilityProfile::load_or_measure(&path, &mut net, &inputs, &cfg).unwrap();
        assert_eq!(src, ProfileSource::Cached);
        assert_eq!(cached, fresh);

        // A flipped byte in the artifact self-heals by re-measuring.
        let mut blob = std::fs::read(&path).unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x04;
        std::fs::write(&path, &blob).unwrap();
        let (healed, src) =
            VulnerabilityProfile::load_or_measure(&path, &mut net, &inputs, &cfg).unwrap();
        assert_eq!(src, ProfileSource::Measured, "corruption must trigger re-measurement");
        assert_eq!(healed, fresh);
        // And the healed artifact is valid again.
        let reread = VulnerabilityProfile::decode(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(reread, fresh);

        // A changed measurement config also re-measures.
        let other = ProfileConfig { seed: cfg.seed + 1, ..cfg.clone() };
        let (_, src) =
            VulnerabilityProfile::load_or_measure(&path, &mut net, &inputs, &other).unwrap();
        assert_eq!(src, ProfileSource::Measured, "config drift must trigger re-measurement");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
