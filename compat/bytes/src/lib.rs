//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: `BytesMut` as a growable little-endian writer and `Buf` as a
//! consuming little-endian reader over `&[u8]`.

/// Growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Little-endian write methods.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian consuming read methods.
///
/// The `get_*` methods panic when the buffer is too short, matching
/// upstream `bytes`; callers bound-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().expect("2 bytes"));
        *self = &self[2..];
        v
    }
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        *self = &self[4..];
        v
    }
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        *self = &self[8..];
        v
    }
    fn get_f32_le(&mut self) -> f32 {
        let v = f32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        *self = &self[4..];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"PGMR");
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f32_le(1.5);
        let blob = buf.to_vec();
        let mut r: &[u8] = &blob;
        assert_eq!(r.remaining(), 23);
        assert_eq!(&r[..4], b"PGMR");
        r.advance(4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }
}
