//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses. The build container has no access to crates.io, so the workspace
//! resolves `rand` to this path crate instead.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — not the same stream as upstream `StdRng`, but the workspace
//! only relies on seeds for *reproducibility*, never on exact values.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full f32 granularity.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`], parameterized by element type and
/// implemented via a single blanket impl per range shape so that the range's
/// element type unifies with the expected output during inference, exactly as
/// upstream `rand` does.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Element types with a uniform distribution over a bounded range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. Panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics when the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
            let w: f64 = rng.gen_range(0.5f64..=0.75);
            assert!((0.5..=0.75).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = rng.gen_range(0usize..5);
            seen[v] = true;
            let w: i32 = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}
