//! Offline stand-in for the subset of `criterion` this workspace uses: a
//! `Criterion` with `bench_function`, a `Bencher` with `iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a simple
//! calibrated loop (warm-up, then a fixed measurement budget) printing
//! mean ns/iter — no statistics machinery, but honest wall-clock numbers.

use std::time::{Duration, Instant};

/// Benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { warm_up: Duration::from_millis(300), measure: Duration::from_millis(1000) }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; configuration flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `f` repeatedly under a timer and prints the mean time per
    /// iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
        // Warm-up: run until the warm-up budget is spent.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            f(&mut bencher);
        }
        // Measurement.
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < self.measure {
            f(&mut bencher);
        }
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        println!("{id:<48} {:>12.1} ns/iter ({} iters)", per_iter.as_nanos() as f64, bencher.iters);
        self
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one batch of calls to `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
