//! Offline stand-in for the subset of `proptest` this workspace uses:
//! range / tuple / collection strategies, `prop_map` / `prop_flat_map`,
//! `any::<bool>()`, and the `proptest!` test macro. Inputs are generated
//! from a seed derived from the test's module path and name, so runs are
//! deterministic; there is no shrinking — a failing case panics with the
//! generated values left to the assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test's fully-qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_tuple!(A: 0);
strategy_tuple!(A: 0, B: 1);
strategy_tuple!(A: 0, B: 1, C: 2);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// A fixed value as a strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the full standard distribution of `T`.
pub struct Any<T>(PhantomData<T>);

/// Creates the standard strategy for `T` (only primitives are supported).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (rng.unit_f64() as f32 - 0.5) * 2e6
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification: fixed or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a `#[test]`
/// that generates `config.cases` input tuples and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -1.0f32..1.0), n in 1u32..=4) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(any::<bool>(), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
