//! Offline stand-in for `serde`. The workspace derives `Serialize` /
//! `Deserialize` on value types for forward compatibility but never
//! serializes through a serde data format (there is no `serde_json` in the
//! tree), so the traits are empty markers and the derives expand to empty
//! impls. If a future change needs real serialization, replace this crate
//! with vendored upstream serde.

/// Marker for serializable types.
pub trait Serialize {}

/// Marker for deserializable types.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize> Serialize for &T {}
