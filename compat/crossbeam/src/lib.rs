//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope`, layered over `std::thread::scope` (available
//! since Rust 1.63). One behavioral difference: a panicking child thread
//! makes `scope` itself panic (std semantics) instead of returning `Err`,
//! which still fails loudly at every call site in this workspace.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the closure; spawned threads may themselves
    /// spawn (the handle is `Copy`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(handle))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_share_borrowed_state() {
            let counter = AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 4);
        }
    }
}
