//! Derive macros for the offline `serde` stand-in. Each derive emits an
//! empty marker impl (`impl ::serde::Serialize for T {}`), handling plain
//! type/lifetime generics without pulling in `syn`/`quote` (unavailable
//! offline).

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}

/// Parses `struct Name<...>` / `enum Name<...>` out of the item tokens and
/// emits the marker impl. Generic parameters keep their bare names; bounds
/// and defaults are dropped (marker traits need none).
fn marker_impl(input: TokenStream, deserialize: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Find the `struct` / `enum` keyword at top level (attributes arrive as
    // `#` + group tokens, which we skip naturally).
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("derive target must be a struct or enum"),
    };
    let params = parse_generic_params(&tokens[i + 2..]);

    let mut impl_params: Vec<String> = Vec::new();
    if deserialize {
        impl_params.push("'de".to_string());
    }
    impl_params.extend(params.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics =
        if params.is_empty() { String::new() } else { format!("<{}>", params.join(", ")) };
    let trait_path = if deserialize {
        "::serde::Deserialize<'de>".to_string()
    } else {
        "::serde::Serialize".to_string()
    };
    format!("impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// If `rest` starts with `<`, returns the bare names of the generic
/// parameters (`T`, `'a`), with bounds/defaults stripped.
fn parse_generic_params(rest: &[TokenTree]) -> Vec<String> {
    match rest.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    // Collect tokens between the angle brackets at depth 0.
    let mut depth = 0i32;
    let mut body: Vec<&TokenTree> = Vec::new();
    for t in rest {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => {
                    depth += 1;
                    if depth == 1 {
                        continue;
                    }
                }
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if depth >= 1 {
            body.push(t);
        }
    }
    // Split on top-level commas; each param's name is everything before the
    // first top-level `:` or `=`.
    let mut params = Vec::new();
    let mut current = String::new();
    let mut skipping = false;
    let mut inner_depth = 0i32;
    for t in body {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' | '(' | '[' => inner_depth += 1,
                '>' | ')' | ']' => inner_depth -= 1,
                ',' if inner_depth == 0 => {
                    if !current.trim().is_empty() {
                        params.push(current.trim().to_string());
                    }
                    current.clear();
                    skipping = false;
                    continue;
                }
                ':' | '=' if inner_depth == 0 => {
                    skipping = true;
                    continue;
                }
                '\'' if !skipping => {
                    current.push('\'');
                    continue;
                }
                _ => {}
            }
        }
        if !skipping {
            current.push_str(&t.to_string());
        }
    }
    if !current.trim().is_empty() {
        params.push(current.trim().to_string());
    }
    params
}
