//! # pgmr — PolygraphMR reproduction facade
//!
//! One-stop re-exports of the full PolygraphMR workspace, so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`core`] — the PolygraphMR system itself (`polygraph-mr`),
//! * [`nn`] — the from-scratch CNN framework,
//! * [`tensor`] — the tensor substrate,
//! * [`datasets`] — the synthetic dataset generators,
//! * [`preprocess`] — the Layer-1 preprocessor pool,
//! * [`precision`] — reduced-precision inference (RAMR substrate),
//! * [`faults`] — seeded bit-flip injection and ABFT fault campaigns,
//! * [`perf`] — the analytical GPU cost model,
//! * [`metrics`] — reliability metrics and Pareto tools,
//! * [`calibration`] — temperature scaling,
//! * [`obs`] — the observability substrate (counters, span timers,
//!   event log) every hot path reports into,
//! * [`serve`] — the deadline-aware streaming inference front-end
//!   (dynamic batching + budgeted RADE staging).
//!
//! ## Example
//!
//! ```no_run
//! use pgmr::core::suite::{Benchmark, Scale};
//! use pgmr::core::builder::SystemBuilder;
//! use pgmr::datasets::Split;
//!
//! let bench = Benchmark::lenet5_digits(Scale::Tiny);
//! let built = SystemBuilder::new(&bench).max_networks(3).build(7);
//! println!("chosen preprocessors: {:?}", built.configuration);
//! let test = bench.data(Split::Test);
//! let mut system = built.system;
//! let (summary, _) = system.evaluate(&test);
//! println!("TP {:.1}%  FP {:.1}%", summary.tp * 100.0, summary.fp * 100.0);
//! ```

pub use pgmr_calibration as calibration;
pub use pgmr_datasets as datasets;
pub use pgmr_faults as faults;
pub use pgmr_metrics as metrics;
pub use pgmr_nn as nn;
pub use pgmr_obs as obs;
pub use pgmr_perf as perf;
pub use pgmr_precision as precision;
pub use pgmr_preprocess as preprocess;
pub use pgmr_serve as serve;
pub use pgmr_tensor as tensor;
pub use polygraph_mr as core;
